#include "sim/fairness.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::sim {
namespace {

TEST(Gini, KnownValues) {
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({3.0, 3.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({0.0, 0.0, 0.0}), 0.0);
  // One person owns everything among n: G = (n-1)/n.
  EXPECT_NEAR(gini_coefficient({0.0, 0.0, 0.0, 12.0}), 0.75, 1e-12);
  // Classic example {1,2,3,4,5}: G = 4/15.
  EXPECT_NEAR(gini_coefficient({1, 2, 3, 4, 5}), 4.0 / 15.0, 1e-12);
}

TEST(Gini, OrderInvariant) {
  EXPECT_DOUBLE_EQ(gini_coefficient({5, 1, 3}), gini_coefficient({1, 3, 5}));
}

TEST(Gini, RejectsNegative) {
  EXPECT_THROW(gini_coefficient({1.0, -2.0}), Error);
}

TEST(Jain, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({4.0, 4.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
  // One of n gets everything: J = 1/n.
  EXPECT_NEAR(jain_index({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // {1,2,3}: (6^2)/(3*14) = 36/42.
  EXPECT_NEAR(jain_index({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(Fairness, WorldReport) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_task({0, 0}, 5, 10);
  w.add_user({0, 0}, 100.0);
  w.add_user({0, 0}, 100.0);
  w.add_user({0, 0}, 100.0);
  w.user(0).add_earnings(6.0, 1.0);
  w.user(0).mark_contributed(0);
  w.user(1).add_earnings(6.0, 1.0);
  w.user(1).mark_contributed(0);
  // user 2 idle

  const FairnessReport r = fairness_report(w);
  EXPECT_NEAR(r.active_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.reward_gini, gini_coefficient({6.0, 6.0, 0.0}), 1e-12);
  EXPECT_NEAR(r.reward_jain, jain_index({6.0, 6.0, 0.0}), 1e-12);
  EXPECT_NEAR(r.profit_gini, gini_coefficient({5.0, 5.0, 0.0}), 1e-12);
}

TEST(Fairness, PerfectEqualityAndMonopoly) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_user({0, 0}, 1.0);
  w.add_user({0, 0}, 1.0);
  w.user(0).add_earnings(3.0, 0.0);
  w.user(1).add_earnings(3.0, 0.0);
  const FairnessReport equal = fairness_report(w);
  EXPECT_DOUBLE_EQ(equal.reward_gini, 0.0);
  EXPECT_DOUBLE_EQ(equal.reward_jain, 1.0);

  model::World m(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  m.add_user({0, 0}, 1.0);
  m.add_user({0, 0}, 1.0);
  m.user(0).add_earnings(3.0, 0.0);
  const FairnessReport mono = fairness_report(m);
  EXPECT_NEAR(mono.reward_gini, 0.5, 1e-12);
  EXPECT_NEAR(mono.reward_jain, 0.5, 1e-12);
}

}  // namespace
}  // namespace mcs::sim
