// Paper-level behavioural properties (the qualitative claims of §VI),
// verified on reduced but non-trivial configurations so the suite stays
// fast. Absolute numbers are scenario-dependent; these tests pin the
// *relations* the paper reports.
#include <gtest/gtest.h>

#include "exp/figures.h"
#include "exp/runner.h"

namespace mcs::exp {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;           // paper defaults: 20 tasks x 20 measurements
  cfg.repetitions = 5;
  cfg.selector = select::SelectorKind::kGreedy;  // fast; relations also hold for DP
  cfg.seed = 7;
  return cfg;
}

AggregateResult run_with(incentive::MechanismKind kind, int users) {
  ExperimentConfig cfg = base_config();
  cfg.mechanism = kind;
  cfg.scenario.num_users = users;
  return run_experiment(cfg);
}

TEST(PaperProperties, OnDemandCoverageIsFullAndBeatsFixed) {
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 80);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 80);
  // Fig. 6: on-demand achieves (near-)100% coverage and dominates fixed.
  EXPECT_GT(on_demand.coverage.mean(), 99.0);
  EXPECT_GE(on_demand.coverage.mean(), fixed.coverage.mean());
}

TEST(PaperProperties, SteeredCoverageAlsoFull) {
  const auto steered = run_with(incentive::MechanismKind::kSteered, 80);
  EXPECT_GT(steered.coverage.mean(), 99.0);
}

TEST(PaperProperties, CompletenessOrderingOnDemandFixedSteered) {
  // Fig. 7: on-demand > fixed > steered in overall completeness.
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 100);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 100);
  const auto steered = run_with(incentive::MechanismKind::kSteered, 100);
  EXPECT_GT(on_demand.completeness.mean(), fixed.completeness.mean());
  EXPECT_GT(fixed.completeness.mean(), steered.completeness.mean());
}

TEST(PaperProperties, CompletenessIncreasesWithUsers) {
  // Fig. 7(a): more users -> higher completeness, for every mechanism.
  for (const auto kind : all_mechanisms()) {
    const auto few = run_with(kind, 40);
    const auto many = run_with(kind, 140);
    EXPECT_GT(many.completeness.mean(), few.completeness.mean())
        << incentive::mechanism_name(kind);
  }
}

TEST(PaperProperties, AvgMeasurementsOrderingAndGrowth) {
  // Fig. 8(a): on-demand collects the most measurements per task and the
  // count grows with the user population.
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 100);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 100);
  const auto steered = run_with(incentive::MechanismKind::kSteered, 100);
  EXPECT_GT(on_demand.avg_measurements.mean(), fixed.avg_measurements.mean());
  EXPECT_GT(fixed.avg_measurements.mean(), steered.avg_measurements.mean());
}

TEST(PaperProperties, FixedAndSteeredRunDryButOnDemandPersists) {
  // Fig. 8(b): with a static population, fixed and steered stop collecting
  // after the first few rounds; on-demand keeps eliciting measurements.
  auto late_activity = [](const AggregateResult& r) {
    double total = 0.0;
    for (std::size_t k = 5; k < r.round_new_measurements.size(); ++k) {
      total += r.round_new_measurements[k].mean();
    }
    return total;
  };
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 100);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 100);
  const auto steered = run_with(incentive::MechanismKind::kSteered, 100);
  EXPECT_GT(late_activity(on_demand), 5.0);
  EXPECT_LT(late_activity(fixed), 1.0);
  EXPECT_LT(late_activity(steered), 1.0);
}

TEST(PaperProperties, OnDemandBalancesParticipation) {
  // Fig. 9(a): on-demand's per-task measurement variance is far below
  // fixed's (better balance of participation).
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 100);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 100);
  EXPECT_LT(on_demand.measurement_variance.mean(),
            0.5 * fixed.measurement_variance.mean());
}

TEST(PaperProperties, OnDemandPaysLessPerMeasurementThanFixed) {
  // Fig. 9(b): the platform's welfare proxy — on-demand pays less per
  // measurement than the fixed mechanism.
  const auto on_demand = run_with(incentive::MechanismKind::kOnDemand, 100);
  const auto fixed = run_with(incentive::MechanismKind::kFixed, 100);
  EXPECT_LT(on_demand.reward_per_measurement.mean(),
            fixed.reward_per_measurement.mean());
}

TEST(PaperProperties, OnDemandRewardPerMeasurementDecreasesWithUsers) {
  // Fig. 9(b): more users -> lower demand -> cheaper measurements.
  const auto few = run_with(incentive::MechanismKind::kOnDemand, 40);
  const auto many = run_with(incentive::MechanismKind::kOnDemand, 140);
  EXPECT_LT(many.reward_per_measurement.mean(),
            few.reward_per_measurement.mean());
}

TEST(PaperProperties, BudgetRespectedByDemandLevelMechanisms) {
  // Eq. 8: on-demand and fixed payouts never exceed the $1000 budget.
  for (const auto kind :
       {incentive::MechanismKind::kOnDemand, incentive::MechanismKind::kFixed}) {
    const auto r = run_with(kind, 140);
    EXPECT_LE(r.total_paid.max(), 1000.0 + 1e-6)
        << incentive::mechanism_name(kind);
    EXPECT_DOUBLE_EQ(r.overdraft.max(), 0.0);
  }
}

TEST(PaperProperties, DpBeatsGreedyOnAverage) {
  // Fig. 5(a): the optimal selector earns users more profit.
  ExperimentConfig cfg = base_config();
  cfg.scenario.user_budget_min_s = 900.0;
  cfg.scenario.user_budget_max_s = 1800.0;
  cfg.repetitions = 3;
  for (const int users : {40, 100}) {
    cfg.scenario.num_users = users;
    const DpVsGreedyResult r = run_dp_vs_greedy(cfg, 2);
    EXPECT_GE(r.dp_profit.mean(), r.greedy_profit.mean());
    for (const double d : r.differences) EXPECT_GE(d, -1e-9);
  }
}

}  // namespace
}  // namespace mcs::exp
