// Failure isolation in the experiment runner: a repetition that throws
// mcs::Error gets one same-seed retry, a repetition that keeps failing is
// recorded in failed_reps without poisoning any aggregate, and only a
// sweep where *every* repetition fails aborts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"
#include "exp/runner.h"
#include "incentive/mechanism.h"

namespace mcs::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario.num_users = 40;
  cfg.scenario.num_tasks = 10;
  cfg.scenario.required_measurements = 8;
  cfg.repetitions = 5;
  cfg.max_rounds = 8;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.threads = 1;
  return cfg;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
}

void expect_aggregate_identical(const AggregateResult& a,
                                const AggregateResult& b) {
  expect_stats_identical(a.coverage, b.coverage, "coverage");
  expect_stats_identical(a.completeness, b.completeness, "completeness");
  expect_stats_identical(a.total_paid, b.total_paid, "total_paid");
  expect_stats_identical(a.active_fraction, b.active_fraction,
                         "active_fraction");
  ASSERT_EQ(a.round_new_measurements.size(), b.round_new_measurements.size());
  for (std::size_t k = 0; k < a.round_new_measurements.size(); ++k) {
    expect_stats_identical(a.round_new_measurements[k],
                           b.round_new_measurements[k], "round_new");
    expect_stats_identical(a.round_mean_reward[k], b.round_mean_reward[k],
                           "round_mean_reward");
  }
}

TEST(RunnerFailure, CleanSweepReportsNoFailedRepetitions) {
  EXPECT_TRUE(run_experiment(small_config()).failed_reps.empty());
}

TEST(RunnerFailure, TransientFailureIsRetriedWithTheSameSeed) {
  const AggregateResult base = run_experiment(small_config());

  ExperimentConfig flaky = small_config();
  std::atomic<int> first_attempts{0};
  flaky.repetition_probe = [&first_attempts](int rep, int attempt) {
    if (rep == 1 && attempt == 0) {
      ++first_attempts;
      throw Error("injected transient failure");
    }
  };
  const AggregateResult agg = run_experiment(flaky);
  EXPECT_EQ(first_attempts.load(), 1);
  EXPECT_TRUE(agg.failed_reps.empty())
      << "retried repetition must not be reported as failed";
  // The retry reruns the identical seed, so the sweep is indistinguishable
  // from one that never failed.
  expect_aggregate_identical(base, agg);
}

TEST(RunnerFailure, PersistentFailureLandsInFailedRepsWithoutPoisoning) {
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 1) throw Error("injected persistent failure");
  };
  const AggregateResult agg = run_experiment(cfg);

  ASSERT_EQ(agg.failed_reps.size(), 1u);
  EXPECT_EQ(agg.failed_reps[0].rep, 1);
  EXPECT_EQ(agg.failed_reps[0].seed, repetition_seed(cfg, 1));
  EXPECT_NE(agg.failed_reps[0].error.find("injected persistent failure"),
            std::string::npos);

  // Aggregates hold exactly the surviving repetitions…
  const auto survivors = static_cast<std::size_t>(cfg.repetitions) - 1;
  EXPECT_EQ(agg.coverage.count(), survivors);
  EXPECT_EQ(agg.total_paid.count(), survivors);

  // …and match a manual merge of those repetitions run standalone.
  RunningStats manual_paid;
  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    if (rep == 1) continue;
    manual_paid.add(
        run_repetition(cfg, repetition_seed(cfg, rep)).campaign.total_paid);
  }
  EXPECT_EQ(agg.total_paid.mean(), manual_paid.mean());
  EXPECT_EQ(agg.total_paid.variance(), manual_paid.variance());
}

TEST(RunnerFailure, FailedSweepIsBitIdenticalAcrossThreadCounts) {
  ExperimentConfig serial = small_config();
  serial.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 2) throw Error("injected persistent failure");
  };
  ExperimentConfig threaded = serial;
  threaded.threads = 8;
  const AggregateResult a = run_experiment(serial);
  const AggregateResult b = run_experiment(threaded);
  ASSERT_EQ(a.failed_reps.size(), 1u);
  ASSERT_EQ(b.failed_reps.size(), 1u);
  EXPECT_EQ(a.failed_reps[0].rep, b.failed_reps[0].rep);
  EXPECT_EQ(a.failed_reps[0].seed, b.failed_reps[0].seed);
  expect_aggregate_identical(a, b);
}

TEST(RunnerFailure, ProbeRunsOncePerAttempt) {
  ExperimentConfig cfg = small_config();
  std::atomic<int> calls{0};
  cfg.repetition_probe = [&calls](int /*rep*/, int /*attempt*/) { ++calls; };
  run_experiment(cfg);
  // No failures: exactly one attempt per repetition.
  EXPECT_EQ(calls.load(), cfg.repetitions);
}

TEST(RunnerFailure, AllRepetitionsFailingAborts) {
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int /*rep*/, int /*attempt*/) {
    throw Error("injected total failure");
  };
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(RunnerFailure, AttemptBudgetIsConfigurable) {
  // Fails attempts 0..2 of rep 1; with max_attempts=4 the fourth try lands.
  ExperimentConfig cfg = small_config();
  cfg.max_attempts = 4;
  cfg.repetition_probe = [](int rep, int attempt) {
    if (rep == 1 && attempt < 3) throw Error("injected transient failure");
  };
  const AggregateResult agg = run_experiment(cfg);
  EXPECT_TRUE(agg.failed_reps.empty());
  ASSERT_EQ(agg.rep_attempts.size(),
            static_cast<std::size_t>(cfg.repetitions));
  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    EXPECT_EQ(agg.rep_attempts[static_cast<std::size_t>(rep)],
              rep == 1 ? 4 : 1)
        << "rep " << rep;
  }
  expect_aggregate_identical(run_experiment(small_config()), agg);
}

TEST(RunnerFailure, MaxAttemptsOneDisablesRetries) {
  ExperimentConfig cfg = small_config();
  cfg.max_attempts = 1;
  std::atomic<int> probes_for_rep1{0};
  cfg.repetition_probe = [&probes_for_rep1](int rep, int /*attempt*/) {
    if (rep == 1) {
      ++probes_for_rep1;
      throw Error("injected transient failure");
    }
  };
  const AggregateResult agg = run_experiment(cfg);
  EXPECT_EQ(probes_for_rep1.load(), 1) << "no retry with a budget of one";
  ASSERT_EQ(agg.failed_reps.size(), 1u);
  EXPECT_EQ(agg.failed_reps[0].rep, 1);
  EXPECT_EQ(agg.rep_attempts[1], 1);
}

TEST(RunnerFailure, ZeroAttemptBudgetRejected) {
  ExperimentConfig cfg = small_config();
  cfg.max_attempts = 0;
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(RunnerFailure, BackoffHookFiresOnceBeforeEveryRetryOnly) {
  ExperimentConfig cfg = small_config();
  cfg.max_attempts = 3;
  cfg.repetition_probe = [](int rep, int attempt) {
    if (rep == 2 && attempt < 2) throw Error("injected transient failure");
  };
  // Deterministic injectable backoff: tests record the schedule instead of
  // sleeping, keeping wall-clock out of the suite.
  std::mutex mu;
  std::vector<std::pair<int, int>> calls;
  cfg.retry_backoff = [&mu, &calls](int rep, int attempt) {
    const std::lock_guard<std::mutex> lock(mu);
    calls.emplace_back(rep, attempt);
  };
  const AggregateResult agg = run_experiment(cfg);
  EXPECT_TRUE(agg.failed_reps.empty());
  const std::vector<std::pair<int, int>> expected = {{2, 1}, {2, 2}};
  EXPECT_EQ(calls, expected) << "backoff runs before retries, never attempt 0";
  EXPECT_EQ(agg.rep_attempts[2], 3);
}

// A mechanism wrapper that forwards everything to a real on-demand
// mechanism but throws once, mid-campaign, on the first attempt — the
// checkpoint-resume path then kicks in on the retry. The base's reward
// lookups read rewards_, so every forwarded mutation re-copies the inner
// vector.
class ThrowOnceMechanism final : public incentive::IncentiveMechanism {
 public:
  ThrowOnceMechanism(std::unique_ptr<incentive::IncentiveMechanism> inner,
                     Round crash_round, std::shared_ptr<std::atomic<bool>> armed,
                     std::shared_ptr<std::atomic<int>> round1_updates)
      : inner_(std::move(inner)),
        crash_round_(crash_round),
        armed_(std::move(armed)),
        round1_updates_(std::move(round1_updates)) {
    rewards_ = inner_->rewards();
  }

  const char* name() const override { return inner_->name(); }
  bool updates_within_round() const override {
    return inner_->updates_within_round();
  }

  void update_rewards(const model::World& world, Round k) override {
    if (k == 1) ++*round1_updates_;
    if (k == crash_round_ && armed_->exchange(false)) {
      throw Error("injected mid-campaign crash");
    }
    inner_->update_rewards(world, k);
    rewards_ = inner_->rewards();
  }

  void reprice(const model::World& world, Round k,
               const std::vector<std::size_t>& dirty_tasks) override {
    inner_->reprice(world, k, dirty_tasks);
    rewards_ = inner_->rewards();
  }

  Json state_to_json() const override { return inner_->state_to_json(); }
  void restore_state(const Json& state) override {
    inner_->restore_state(state);
    rewards_ = inner_->rewards();
  }

 private:
  std::unique_ptr<incentive::IncentiveMechanism> inner_;
  Round crash_round_;
  std::shared_ptr<std::atomic<bool>> armed_;
  std::shared_ptr<std::atomic<int>> round1_updates_;
};

/// Fresh empty checkpoint directory under the test temp root.
std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "mcs_runner_ckpt_XXXXXX";
  EXPECT_NE(::mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

TEST(RunnerCheckpoint, RetryResumesFromLastGoodCheckpointNotFromScratch) {
  ExperimentConfig cfg = small_config();
  cfg.repetitions = 1;
  cfg.checkpoint_every = 2;
  cfg.checkpoint_dir = make_temp_dir();

  auto armed = std::make_shared<std::atomic<bool>>(true);
  auto round1_updates = std::make_shared<std::atomic<int>>(0);
  const MechanismFactory factory = [&](const model::World& world, Rng& rng) {
    return std::make_unique<ThrowOnceMechanism>(
        incentive::make_mechanism(cfg.mechanism, world, cfg.mech_params, rng),
        /*crash_round=*/6, armed, round1_updates);
  };
  const AggregateResult agg = run_experiment_with(cfg, factory);
  EXPECT_TRUE(agg.failed_reps.empty());
  ASSERT_EQ(agg.rep_attempts.size(), 1u);
  EXPECT_EQ(agg.rep_attempts[0], 2);
  // The proof of resume-not-rerun: the retry started from the round-4
  // checkpoint, so round 1's reward update ran exactly once across both
  // attempts (a from-scratch retry would have run it twice).
  EXPECT_EQ(round1_updates->load(), 1);

  // And the recovered repetition contributes exactly the doubles an
  // uninterrupted run would: compare against the same config without the
  // crash or any checkpointing.
  ExperimentConfig clean = small_config();
  clean.repetitions = 1;
  auto never = std::make_shared<std::atomic<bool>>(false);
  auto clean_updates = std::make_shared<std::atomic<int>>(0);
  const MechanismFactory clean_factory = [&](const model::World& world,
                                             Rng& rng) {
    return std::make_unique<ThrowOnceMechanism>(
        incentive::make_mechanism(clean.mechanism, world, clean.mech_params,
                                  rng),
        /*crash_round=*/6, never, clean_updates);
  };
  const AggregateResult base = run_experiment_with(clean, clean_factory);
  expect_aggregate_identical(base, agg);
}

TEST(RunnerCheckpoint, CorruptCheckpointsDegradeToFullRerun) {
  // Same crash scenario, but every checkpoint generation is corrupted
  // before the retry can use it: the runner must fall back to a clean
  // same-seed rerun instead of failing the repetition.
  ExperimentConfig cfg = small_config();
  cfg.repetitions = 1;
  cfg.checkpoint_every = 2;
  cfg.checkpoint_dir = make_temp_dir();

  auto armed = std::make_shared<std::atomic<bool>>(true);
  auto round1_updates = std::make_shared<std::atomic<int>>(0);
  const std::string rep_dir = cfg.checkpoint_dir + "/rep-0";
  cfg.repetition_probe = [&](int /*rep*/, int attempt) {
    if (attempt == 0) return;
    // Before the retry runs: smash every generation on disk.
    const int rc = std::system(
        ("for f in " + rep_dir + "/gen-*.ckpt; do echo garbage > $f; done")
            .c_str());
    (void)rc;
  };
  const MechanismFactory factory = [&](const model::World& world, Rng& rng) {
    return std::make_unique<ThrowOnceMechanism>(
        incentive::make_mechanism(cfg.mechanism, world, cfg.mech_params, rng),
        /*crash_round=*/6, armed, round1_updates);
  };
  const AggregateResult agg = run_experiment_with(cfg, factory);
  EXPECT_TRUE(agg.failed_reps.empty());
  // Fallback rerun means round 1 executed on both attempts.
  EXPECT_EQ(round1_updates->load(), 2);
}

TEST(RunnerCheckpoint, StaleCheckpointsOfAnotherConfigAreNeverResumed) {
  // Sweeps reuse one --checkpoint-dir across sweep points, so rep-<n>/ can
  // hold finished generations from a *different* experiment. Those decode
  // fine and carry the same mechanism/selector names — only the provenance
  // stamp tells them apart. A fresh first attempt over a stale directory
  // must ignore them and produce exactly the clean run's doubles.
  const std::string dir = make_temp_dir();

  ExperimentConfig first = small_config();
  first.scenario.num_users = 24;  // a different sweep point
  first.repetitions = 2;
  first.checkpoint_every = 2;
  first.checkpoint_dir = dir;
  run_experiment(first);

  ExperimentConfig second = small_config();
  second.repetitions = 2;
  second.checkpoint_every = 2;
  second.checkpoint_dir = dir;  // same rep dirs, different scenario
  const AggregateResult over_stale = run_experiment(second);

  ExperimentConfig clean = small_config();
  clean.repetitions = 2;
  const AggregateResult base = run_experiment(clean);
  expect_aggregate_identical(base, over_stale);

  // A seed change alone is also a different campaign: same scenario, same
  // knobs, new seed over the directory the previous seed just filled.
  ExperimentConfig reseeded = small_config();
  reseeded.repetitions = 2;
  reseeded.seed = 4711;
  reseeded.checkpoint_every = 2;
  reseeded.checkpoint_dir = dir;
  ExperimentConfig reseeded_clean = small_config();
  reseeded_clean.repetitions = 2;
  reseeded_clean.seed = 4711;
  expect_aggregate_identical(run_experiment(reseeded_clean),
                             run_experiment(reseeded));
}

TEST(RunnerFailure, NonErrorExceptionsPropagate) {
  // Only mcs::Error means "this repetition failed" — anything else (say
  // std::bad_alloc) is a programming error and must escape untouched.
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 0) throw std::logic_error("not an mcs::Error");
  };
  EXPECT_THROW(run_experiment(cfg), std::logic_error);
}

}  // namespace
}  // namespace mcs::exp
