// Failure isolation in the experiment runner: a repetition that throws
// mcs::Error gets one same-seed retry, a repetition that keeps failing is
// recorded in failed_reps without poisoning any aggregate, and only a
// sweep where *every* repetition fails aborts.
#include <gtest/gtest.h>

#include <atomic>

#include "common/error.h"
#include "exp/runner.h"

namespace mcs::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario.num_users = 40;
  cfg.scenario.num_tasks = 10;
  cfg.scenario.required_measurements = 8;
  cfg.repetitions = 5;
  cfg.max_rounds = 8;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.threads = 1;
  return cfg;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
}

void expect_aggregate_identical(const AggregateResult& a,
                                const AggregateResult& b) {
  expect_stats_identical(a.coverage, b.coverage, "coverage");
  expect_stats_identical(a.completeness, b.completeness, "completeness");
  expect_stats_identical(a.total_paid, b.total_paid, "total_paid");
  expect_stats_identical(a.active_fraction, b.active_fraction,
                         "active_fraction");
  ASSERT_EQ(a.round_new_measurements.size(), b.round_new_measurements.size());
  for (std::size_t k = 0; k < a.round_new_measurements.size(); ++k) {
    expect_stats_identical(a.round_new_measurements[k],
                           b.round_new_measurements[k], "round_new");
    expect_stats_identical(a.round_mean_reward[k], b.round_mean_reward[k],
                           "round_mean_reward");
  }
}

TEST(RunnerFailure, CleanSweepReportsNoFailedRepetitions) {
  EXPECT_TRUE(run_experiment(small_config()).failed_reps.empty());
}

TEST(RunnerFailure, TransientFailureIsRetriedWithTheSameSeed) {
  const AggregateResult base = run_experiment(small_config());

  ExperimentConfig flaky = small_config();
  std::atomic<int> first_attempts{0};
  flaky.repetition_probe = [&first_attempts](int rep, int attempt) {
    if (rep == 1 && attempt == 0) {
      ++first_attempts;
      throw Error("injected transient failure");
    }
  };
  const AggregateResult agg = run_experiment(flaky);
  EXPECT_EQ(first_attempts.load(), 1);
  EXPECT_TRUE(agg.failed_reps.empty())
      << "retried repetition must not be reported as failed";
  // The retry reruns the identical seed, so the sweep is indistinguishable
  // from one that never failed.
  expect_aggregate_identical(base, agg);
}

TEST(RunnerFailure, PersistentFailureLandsInFailedRepsWithoutPoisoning) {
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 1) throw Error("injected persistent failure");
  };
  const AggregateResult agg = run_experiment(cfg);

  ASSERT_EQ(agg.failed_reps.size(), 1u);
  EXPECT_EQ(agg.failed_reps[0].rep, 1);
  EXPECT_EQ(agg.failed_reps[0].seed, repetition_seed(cfg, 1));
  EXPECT_NE(agg.failed_reps[0].error.find("injected persistent failure"),
            std::string::npos);

  // Aggregates hold exactly the surviving repetitions…
  const auto survivors = static_cast<std::size_t>(cfg.repetitions) - 1;
  EXPECT_EQ(agg.coverage.count(), survivors);
  EXPECT_EQ(agg.total_paid.count(), survivors);

  // …and match a manual merge of those repetitions run standalone.
  RunningStats manual_paid;
  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    if (rep == 1) continue;
    manual_paid.add(
        run_repetition(cfg, repetition_seed(cfg, rep)).campaign.total_paid);
  }
  EXPECT_EQ(agg.total_paid.mean(), manual_paid.mean());
  EXPECT_EQ(agg.total_paid.variance(), manual_paid.variance());
}

TEST(RunnerFailure, FailedSweepIsBitIdenticalAcrossThreadCounts) {
  ExperimentConfig serial = small_config();
  serial.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 2) throw Error("injected persistent failure");
  };
  ExperimentConfig threaded = serial;
  threaded.threads = 8;
  const AggregateResult a = run_experiment(serial);
  const AggregateResult b = run_experiment(threaded);
  ASSERT_EQ(a.failed_reps.size(), 1u);
  ASSERT_EQ(b.failed_reps.size(), 1u);
  EXPECT_EQ(a.failed_reps[0].rep, b.failed_reps[0].rep);
  EXPECT_EQ(a.failed_reps[0].seed, b.failed_reps[0].seed);
  expect_aggregate_identical(a, b);
}

TEST(RunnerFailure, ProbeRunsOncePerAttempt) {
  ExperimentConfig cfg = small_config();
  std::atomic<int> calls{0};
  cfg.repetition_probe = [&calls](int /*rep*/, int /*attempt*/) { ++calls; };
  run_experiment(cfg);
  // No failures: exactly one attempt per repetition.
  EXPECT_EQ(calls.load(), cfg.repetitions);
}

TEST(RunnerFailure, AllRepetitionsFailingAborts) {
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int /*rep*/, int /*attempt*/) {
    throw Error("injected total failure");
  };
  EXPECT_THROW(run_experiment(cfg), Error);
}

TEST(RunnerFailure, NonErrorExceptionsPropagate) {
  // Only mcs::Error means "this repetition failed" — anything else (say
  // std::bad_alloc) is a programming error and must escape untouched.
  ExperimentConfig cfg = small_config();
  cfg.repetition_probe = [](int rep, int /*attempt*/) {
    if (rep == 0) throw std::logic_error("not an mcs::Error");
  };
  EXPECT_THROW(run_experiment(cfg), std::logic_error);
}

}  // namespace
}  // namespace mcs::exp
