// Experiment-harness behaviour: determinism, aggregation arithmetic,
// padding of early-terminating campaigns, and the paired DP/greedy
// comparison.
#include <gtest/gtest.h>

#include "exp/figures.h"
#include "exp/runner.h"

namespace mcs::exp {
namespace {

ExperimentConfig quick_config() {
  ExperimentConfig cfg;
  cfg.scenario.num_users = 40;
  cfg.scenario.num_tasks = 10;
  cfg.scenario.required_measurements = 8;
  cfg.repetitions = 3;
  cfg.max_rounds = 10;
  cfg.selector = select::SelectorKind::kGreedy;
  return cfg;
}

TEST(Runner, RepetitionIsDeterministicInSeed) {
  const ExperimentConfig cfg = quick_config();
  const RepetitionResult a = run_repetition(cfg, 123);
  const RepetitionResult b = run_repetition(cfg, 123);
  EXPECT_EQ(a.campaign.total_measurements, b.campaign.total_measurements);
  EXPECT_DOUBLE_EQ(a.campaign.total_paid, b.campaign.total_paid);
  EXPECT_EQ(a.campaign.per_task_received, b.campaign.per_task_received);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t k = 0; k < a.rounds.size(); ++k) {
    EXPECT_EQ(a.rounds[k].new_measurements, b.rounds[k].new_measurements);
  }
  const RepetitionResult c = run_repetition(cfg, 124);
  EXPECT_NE(a.campaign.total_measurements, c.campaign.total_measurements);
}

TEST(Runner, AggregateCountsRepetitions) {
  const ExperimentConfig cfg = quick_config();
  const AggregateResult agg = run_experiment(cfg);
  EXPECT_EQ(agg.coverage.count(), 3u);
  EXPECT_EQ(agg.completeness.count(), 3u);
  ASSERT_EQ(agg.round_new_measurements.size(), 10u);
  for (const auto& rs : agg.round_new_measurements) {
    EXPECT_EQ(rs.count(), 3u);  // padded to max_rounds for every rep
  }
}

TEST(Runner, AggregateIsReproducible) {
  const ExperimentConfig cfg = quick_config();
  const AggregateResult a = run_experiment(cfg);
  const AggregateResult b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.coverage.mean(), b.coverage.mean());
  EXPECT_DOUBLE_EQ(a.reward_per_measurement.mean(),
                   b.reward_per_measurement.mean());
}

TEST(Runner, PaddingCarriesFinalCoverageForward) {
  // A generous scenario finishes early; the padded rounds must then hold
  // coverage constant and contribute zero new measurements.
  ExperimentConfig cfg = quick_config();
  cfg.scenario.num_users = 120;
  cfg.scenario.user_budget_min_s = 2000.0;
  cfg.scenario.user_budget_max_s = 3000.0;
  cfg.repetitions = 1;
  const RepetitionResult rep = run_repetition(cfg, 5);
  ASSERT_LT(rep.rounds.size(), 10u) << "scenario unexpectedly ran long";
  const AggregateResult agg = run_experiment(cfg);
  const double final_cov = rep.rounds.back().coverage_pct;
  for (std::size_t k = rep.rounds.size(); k < 10; ++k) {
    EXPECT_DOUBLE_EQ(agg.round_coverage[k].mean(), final_cov);
    EXPECT_DOUBLE_EQ(agg.round_new_measurements[k].mean(), 0.0);
  }
}

TEST(Runner, DpVsGreedyPairedDominance) {
  ExperimentConfig cfg = quick_config();
  cfg.scenario.user_budget_min_s = 900.0;
  cfg.scenario.user_budget_max_s = 1800.0;
  const DpVsGreedyResult r = run_dp_vs_greedy(cfg, /*at_round=*/2);
  EXPECT_EQ(r.dp_profit.count(), 3u * 40u);
  ASSERT_EQ(r.differences.size(), 3u * 40u);
  // Paired on identical instances: DP can never lose to greedy.
  for (const double d : r.differences) EXPECT_GE(d, -1e-9);
  EXPECT_GE(r.dp_profit.mean(), r.greedy_profit.mean());
}

TEST(Runner, CustomMechanismFactoryIsUsed) {
  // run_experiment_with must feed every repetition through the factory; a
  // factory returning the fixed mechanism must reproduce run_experiment
  // with cfg.mechanism = kFixed exactly (same seeds, same draws).
  ExperimentConfig cfg = quick_config();
  cfg.mechanism = incentive::MechanismKind::kFixed;
  const AggregateResult direct = run_experiment(cfg);
  const MechanismFactory factory =
      [&cfg](const model::World& world,
             Rng& rng) -> std::unique_ptr<incentive::IncentiveMechanism> {
    return incentive::make_mechanism(incentive::MechanismKind::kFixed, world,
                                     cfg.mech_params, rng);
  };
  const AggregateResult via_factory = run_experiment_with(cfg, factory);
  EXPECT_DOUBLE_EQ(direct.completeness.mean(), via_factory.completeness.mean());
  EXPECT_DOUBLE_EQ(direct.total_paid.mean(), via_factory.total_paid.mean());
}

TEST(Runner, FairnessAggregatesPopulated) {
  const ExperimentConfig cfg = quick_config();
  const AggregateResult agg = run_experiment(cfg);
  EXPECT_EQ(agg.reward_gini.count(), 3u);
  EXPECT_GE(agg.reward_gini.mean(), 0.0);
  EXPECT_LE(agg.reward_gini.mean(), 1.0);
  EXPECT_GT(agg.active_fraction.mean(), 0.0);
  EXPECT_EQ(agg.round_mean_reward.size(), 10u);
}

TEST(Runner, DpVsGreedyRoundValidation) {
  const ExperimentConfig cfg = quick_config();
  EXPECT_THROW(run_dp_vs_greedy(cfg, 0), Error);
  EXPECT_THROW(run_dp_vs_greedy(cfg, 99), Error);
}

TEST(Figures, ConfigRoundTrip) {
  const char* argv[] = {"prog",
                        "--users=77",
                        "--tasks=11",
                        "--budget=500",
                        "--lambda=0.25",
                        "--levels=4",
                        "--selector=greedy",
                        "--mechanism=steered",
                        "--reps=9",
                        "--rounds=12",
                        "--seed=99",
                        "--radius=750",
                        "--dp-cap=10"};
  const Config c = Config::from_args(13, argv);
  const ExperimentConfig e = experiment_from_config(c);
  EXPECT_EQ(e.scenario.num_users, 77);
  EXPECT_EQ(e.scenario.num_tasks, 11);
  EXPECT_DOUBLE_EQ(e.mech_params.platform_budget, 500.0);
  EXPECT_DOUBLE_EQ(e.mech_params.lambda, 0.25);
  EXPECT_EQ(e.mech_params.demand_levels, 4);
  EXPECT_EQ(e.selector, select::SelectorKind::kGreedy);
  EXPECT_EQ(e.mechanism, incentive::MechanismKind::kSteered);
  EXPECT_EQ(e.repetitions, 9);
  EXPECT_EQ(e.max_rounds, 12);
  EXPECT_EQ(e.seed, 99u);
  EXPECT_DOUBLE_EQ(e.scenario.neighbor_radius, 750.0);
  EXPECT_EQ(e.dp_candidate_cap, 10);
  EXPECT_TRUE(c.unconsumed_keys().empty());
}

TEST(Figures, UserCountsDefaultAndOverride) {
  const char* none[] = {"prog"};
  EXPECT_EQ(user_counts_from_config(Config::from_args(1, none)),
            (std::vector<int>{40, 60, 80, 100, 120, 140}));
  const char* custom[] = {"prog", "--users-from=10", "--users-to=30",
                          "--users-step=10"};
  EXPECT_EQ(user_counts_from_config(Config::from_args(4, custom)),
            (std::vector<int>{10, 20, 30}));
}

TEST(Figures, UserSweepTableShape) {
  ExperimentConfig cfg = quick_config();
  cfg.repetitions = 1;
  UserSweep sweep(cfg, {20, 40}, all_mechanisms());
  sweep.run();
  const TextTable t =
      sweep.table([](const AggregateResult& r) { return r.coverage.mean(); });
  const std::string s = t.to_string();
  EXPECT_NE(s.find("on-demand"), std::string::npos);
  EXPECT_NE(s.find("fixed"), std::string::npos);
  EXPECT_NE(s.find("steered"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
  EXPECT_NE(s.find("40"), std::string::npos);
}

TEST(Figures, SweepResultAccessorGuards) {
  ExperimentConfig cfg = quick_config();
  UserSweep sweep(cfg, {20}, all_mechanisms());
  EXPECT_THROW(sweep.result(0, 0), Error);  // run() not called yet
  RoundSeries series(cfg, all_mechanisms());
  EXPECT_THROW(series.result(0), Error);
}

}  // namespace
}  // namespace mcs::exp
