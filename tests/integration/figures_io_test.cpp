// exp/figures I/O behaviour: CSV dumping, RoundSeries tables, header echo.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/figures.h"

namespace mcs::exp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.scenario.num_users = 15;
  cfg.scenario.num_tasks = 4;
  cfg.scenario.required_measurements = 3;
  cfg.repetitions = 2;
  cfg.max_rounds = 6;
  cfg.selector = select::SelectorKind::kGreedy;
  return cfg;
}

TEST(FiguresIo, RoundSeriesTableShape) {
  RoundSeries series(tiny_config(), all_mechanisms());
  series.run();
  const TextTable t = series.table(
      [](const AggregateResult& r, std::size_t k) {
        return r.round_coverage[k].mean();
      },
      /*first_round=*/2);
  const std::string s = t.to_string();
  // Rows 2..6 (5 rows) plus header and separator.
  int lines = 0;
  for (const char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 7);
  EXPECT_NE(s.find("round"), std::string::npos);
}

TEST(FiguresIo, MaybeDumpCsvWritesWhenFlagged) {
  const std::string dir = ::testing::TempDir();
  const std::string flag = "--csv-dir=" + dir;
  const char* argv[] = {"prog", flag.c_str()};
  const Config cfg = Config::from_args(2, argv);

  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  maybe_dump_csv(cfg, "figures_io_test", t);

  const std::string path = dir + "/figures_io_test.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(FiguresIo, MaybeDumpCsvNoopWithoutFlag) {
  const char* argv[] = {"prog"};
  const Config cfg = Config::from_args(1, argv);
  TextTable t({"a"});
  t.add_row({"1"});
  EXPECT_NO_THROW(maybe_dump_csv(cfg, "never_written", t));
}

TEST(FiguresIo, HeaderEchoMentionsEveryKnob) {
  const ExperimentConfig cfg = tiny_config();
  ::testing::internal::CaptureStdout();
  print_experiment_header(cfg, "unit-test header");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("unit-test header"), std::string::npos);
  EXPECT_NE(out.find("tasks=4"), std::string::npos);
  EXPECT_NE(out.find("users=15"), std::string::npos);
  EXPECT_NE(out.find("selector=greedy"), std::string::npos);
  EXPECT_NE(out.find("reps=2"), std::string::npos);
}

TEST(FiguresIo, UserSweepSharesSeedsAcrossColumns) {
  // The same repetition seeds are used for every mechanism, so the worlds
  // match column-to-column: with zero repetitions of randomness in the
  // mechanism (on-demand vs steered both deterministic), total *required*
  // work per repetition is identical; we can only observe aggregates, so
  // check that coverage differences come from mechanisms, not worlds, by
  // running the same mechanism twice and expecting identical aggregates.
  UserSweep sweep(tiny_config(), {10, 20},
                  {incentive::MechanismKind::kOnDemand,
                   incentive::MechanismKind::kOnDemand});
  sweep.run();
  for (std::size_t ui = 0; ui < 2; ++ui) {
    EXPECT_DOUBLE_EQ(sweep.result(0, ui).coverage.mean(),
                     sweep.result(1, ui).coverage.mean());
    EXPECT_DOUBLE_EQ(sweep.result(0, ui).total_paid.mean(),
                     sweep.result(1, ui).total_paid.mean());
  }
}

TEST(FiguresIo, ClusteredScenarioWidensOnDemandAdvantage) {
  // Clustered tasks are the paper's motivating geometry: the fixed
  // mechanism's completeness gap vs on-demand must be at least as large on
  // a clustered world as on the uniform one (it starves whole clusters).
  auto gap_for = [](bool clustered) {
    double od = 0.0, fx = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      sim::ScenarioParams p;
      p.num_users = 60;
      p.num_tasks = 12;
      p.required_measurements = 8;
      Rng rng(500 + static_cast<std::uint64_t>(rep));
      model::World base =
          clustered ? sim::generate_clustered_world(p, 3, 120.0, rng)
                    : sim::generate_world(p, rng);
      for (const bool fixed : {false, true}) {
        model::World world = base;  // value copy: identical geometry
        Rng mech_rng(9);
        auto mech = incentive::make_mechanism(
            fixed ? incentive::MechanismKind::kFixed
                  : incentive::MechanismKind::kOnDemand,
            world, {}, mech_rng);
        sim::Simulator s(std::move(world), std::move(mech),
                         select::make_selector(select::SelectorKind::kGreedy),
                         {});
        (fixed ? fx : od) += s.run().completeness_pct;
      }
    }
    return od - fx;
  };
  EXPECT_GE(gap_for(true), 0.0);
  EXPECT_GE(gap_for(false), 0.0);
}

}  // namespace
}  // namespace mcs::exp
