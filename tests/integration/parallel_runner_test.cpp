// Determinism of the parallel experiment runner: fanning repetitions out
// across a thread pool must not change a single bit of any aggregate, the
// per-repetition seed streams must never collide, and the round-metric
// aggregation fixes (early-close exclusion from the mean-reward series)
// stay pinned.
#include <gtest/gtest.h>

#include <set>

#include "exp/runner.h"

namespace mcs::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario.num_users = 40;
  cfg.scenario.num_tasks = 10;
  cfg.scenario.required_measurements = 8;
  cfg.repetitions = 6;
  cfg.max_rounds = 10;
  cfg.selector = select::SelectorKind::kGreedy;
  cfg.threads = 1;
  return cfg;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b,
                            const char* what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

void expect_aggregate_identical(const AggregateResult& a,
                                const AggregateResult& b) {
  expect_stats_identical(a.coverage, b.coverage, "coverage");
  expect_stats_identical(a.completeness, b.completeness, "completeness");
  expect_stats_identical(a.tasks_completed, b.tasks_completed,
                         "tasks_completed");
  expect_stats_identical(a.avg_measurements, b.avg_measurements,
                         "avg_measurements");
  expect_stats_identical(a.measurement_variance, b.measurement_variance,
                         "measurement_variance");
  expect_stats_identical(a.reward_per_measurement, b.reward_per_measurement,
                         "reward_per_measurement");
  expect_stats_identical(a.total_paid, b.total_paid, "total_paid");
  expect_stats_identical(a.overdraft, b.overdraft, "overdraft");
  expect_stats_identical(a.reward_gini, b.reward_gini, "reward_gini");
  expect_stats_identical(a.reward_jain, b.reward_jain, "reward_jain");
  expect_stats_identical(a.active_fraction, b.active_fraction,
                         "active_fraction");
  ASSERT_EQ(a.round_new_measurements.size(), b.round_new_measurements.size());
  for (std::size_t k = 0; k < a.round_new_measurements.size(); ++k) {
    expect_stats_identical(a.round_new_measurements[k],
                           b.round_new_measurements[k], "round_new");
    expect_stats_identical(a.round_coverage[k], b.round_coverage[k],
                           "round_coverage");
    expect_stats_identical(a.round_completeness[k], b.round_completeness[k],
                           "round_completeness");
    expect_stats_identical(a.round_mean_profit[k], b.round_mean_profit[k],
                           "round_mean_profit");
    expect_stats_identical(a.round_mean_reward[k], b.round_mean_reward[k],
                           "round_mean_reward");
  }
}

TEST(ParallelRunner, ThreadedAggregateBitIdenticalToSerial) {
  const ExperimentConfig serial = small_config();
  const AggregateResult base = run_experiment(serial);

  ExperimentConfig threaded = serial;
  threaded.threads = 4;
  expect_aggregate_identical(base, run_experiment(threaded));

  ExperimentConfig auto_threads = serial;
  auto_threads.threads = 0;  // hardware concurrency
  expect_aggregate_identical(base, run_experiment(auto_threads));
}

TEST(ParallelRunner, ThreadedAggregateIdenticalAcrossMechanisms) {
  for (const auto kind :
       {incentive::MechanismKind::kOnDemand, incentive::MechanismKind::kFixed,
        incentive::MechanismKind::kSteered}) {
    ExperimentConfig serial = small_config();
    serial.mechanism = kind;
    ExperimentConfig threaded = serial;
    threaded.threads = 3;
    expect_aggregate_identical(run_experiment(serial),
                               run_experiment(threaded));
  }
}

TEST(ParallelRunner, ThreadedFactoryRunBitIdenticalToSerial) {
  ExperimentConfig serial = small_config();
  const MechanismFactory factory =
      [&serial](const model::World& world,
                Rng& rng) -> std::unique_ptr<incentive::IncentiveMechanism> {
    return incentive::make_mechanism(incentive::MechanismKind::kFixed, world,
                                     serial.mech_params, rng);
  };
  ExperimentConfig threaded = serial;
  threaded.threads = 4;
  expect_aggregate_identical(run_experiment_with(serial, factory),
                             run_experiment_with(threaded, factory));
}

TEST(ParallelRunner, DpVsGreedyBitIdenticalAcrossThreadCounts) {
  ExperimentConfig serial = small_config();
  serial.scenario.user_budget_min_s = 900.0;
  serial.scenario.user_budget_max_s = 1800.0;
  ExperimentConfig threaded = serial;
  threaded.threads = 4;
  const DpVsGreedyResult a = run_dp_vs_greedy(serial, /*at_round=*/2);
  const DpVsGreedyResult b = run_dp_vs_greedy(threaded, /*at_round=*/2);
  expect_stats_identical(a.dp_profit, b.dp_profit, "dp_profit");
  expect_stats_identical(a.greedy_profit, b.greedy_profit, "greedy_profit");
  EXPECT_EQ(a.differences, b.differences);
}

TEST(ParallelRunner, DpSelectorThreadedBitIdenticalToSerial) {
  // The optimized DP keeps a scratch arena per selector; the runner builds
  // one simulator (and thus one selector) per repetition, so repetitions
  // fanned out across threads must stay bit-identical to a serial run.
  ExperimentConfig serial = small_config();
  serial.selector = select::SelectorKind::kDp;
  serial.scenario.num_users = 25;
  serial.repetitions = 4;
  const AggregateResult base = run_experiment(serial);

  ExperimentConfig threaded = serial;
  threaded.threads = 4;
  expect_aggregate_identical(base, run_experiment(threaded));
}

TEST(ParallelRunner, MoreThreadsThanRepetitionsIsFine) {
  ExperimentConfig cfg = small_config();
  cfg.repetitions = 2;
  ExperimentConfig threaded = cfg;
  threaded.threads = 16;
  expect_aggregate_identical(run_experiment(cfg), run_experiment(threaded));
}

TEST(ParallelRunner, RepetitionSeedsDoNotCollide) {
  const ExperimentConfig cfg = small_config();
  std::set<std::uint64_t> seeds;
  for (int rep = 0; rep < 10000; ++rep) {
    EXPECT_TRUE(seeds.insert(repetition_seed(cfg, rep)).second)
        << "seed collision at rep " << rep;
  }
  // Distinct base seeds open distinct streams.
  ExperimentConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(repetition_seed(cfg, 0), repetition_seed(other, 0));
  // And repetition_seed(rep) is exactly what run_experiment uses.
  ExperimentConfig one = cfg;
  one.repetitions = 1;
  const AggregateResult agg = run_experiment(one);
  const RepetitionResult rep0 = run_repetition(one, repetition_seed(one, 0));
  EXPECT_EQ(agg.total_paid.mean(), rep0.campaign.total_paid);
}

TEST(ParallelRunner, EarlyClosedRoundsExcludedFromMeanReward) {
  // A generous scenario finishes before max_rounds; the closed tail must be
  // excluded from the mean-reward aggregate (not averaged in as $0 rounds)
  // while activity series keep their zero-padding.
  ExperimentConfig cfg = small_config();
  cfg.scenario.num_users = 120;
  cfg.scenario.user_budget_min_s = 2000.0;
  cfg.scenario.user_budget_max_s = 3000.0;
  cfg.repetitions = 1;
  const RepetitionResult rep = run_repetition(cfg, repetition_seed(cfg, 0));
  ASSERT_LT(rep.rounds.size(), 10u) << "scenario unexpectedly ran long";
  const AggregateResult agg = run_experiment(cfg);
  for (std::size_t k = 0; k < 10; ++k) {
    if (k < rep.rounds.size()) {
      EXPECT_EQ(agg.round_mean_reward[k].count(), 1u);
      EXPECT_EQ(agg.round_mean_reward[k].mean(),
                rep.rounds[k].mean_open_reward);
    } else {
      // Closed round: no sample, and the padded activity series still count.
      EXPECT_EQ(agg.round_mean_reward[k].count(), 0u);
      EXPECT_EQ(agg.round_new_measurements[k].count(), 1u);
      EXPECT_EQ(agg.round_new_measurements[k].mean(), 0.0);
      EXPECT_EQ(agg.round_mean_profit[k].count(), 1u);
    }
  }
}

TEST(ParallelRunner, MeanRewardAveragesOnlyLiveCampaigns) {
  // Mix a long campaign with a short one: on rounds only the long one
  // reaches, the aggregate must equal the long campaign's value alone.
  ExperimentConfig cfg = small_config();
  cfg.repetitions = 2;
  const RepetitionResult r0 = run_repetition(cfg, repetition_seed(cfg, 0));
  const RepetitionResult r1 = run_repetition(cfg, repetition_seed(cfg, 1));
  const AggregateResult agg = run_experiment(cfg);
  const std::size_t shorter = std::min(r0.rounds.size(), r1.rounds.size());
  const std::size_t longer = std::max(r0.rounds.size(), r1.rounds.size());
  const RepetitionResult& long_rep =
      r0.rounds.size() >= r1.rounds.size() ? r0 : r1;
  for (std::size_t k = shorter; k < longer; ++k) {
    EXPECT_EQ(agg.round_mean_reward[k].count(), 1u);
    EXPECT_EQ(agg.round_mean_reward[k].mean(),
              long_rep.rounds[k].mean_open_reward);
  }
}

}  // namespace
}  // namespace mcs::exp
