// Regression pins: the default paper-scale campaign (seed 7, 100 users,
// DP selector) produces results inside tight recorded bands. These bands
// were measured from the current implementation and are intentionally a
// little wider than run-to-run variation (which is zero — everything is
// seeded) so that small refactors pass but behavioural regressions —
// broken demand math, selector bugs, payment leaks — fail loudly.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace mcs {
namespace {

exp::RepetitionResult default_campaign(incentive::MechanismKind kind) {
  exp::ExperimentConfig cfg;  // paper defaults
  cfg.mechanism = kind;
  cfg.selector = select::SelectorKind::kDp;
  return run_repetition(cfg, 7);
}

TEST(RegressionPin, OnDemandDefaultCampaign) {
  const auto r = default_campaign(incentive::MechanismKind::kOnDemand);
  const sim::CampaignMetrics& m = r.campaign;
  EXPECT_GE(m.coverage_pct, 95.0);
  EXPECT_GE(m.completeness_pct, 80.0);
  EXPECT_LE(m.completeness_pct, 100.0);
  EXPECT_GE(m.avg_measurements, 16.0);
  EXPECT_LE(m.total_paid, 1000.0);          // Eq. 8
  EXPECT_GE(m.total_paid, 300.0);           // a real campaign happened
  EXPECT_DOUBLE_EQ(m.budget_overdraft, 0.0);
  EXPECT_GE(m.avg_reward_per_measurement, 0.5);   // r0 floor
  EXPECT_LE(m.avg_reward_per_measurement, 2.5);   // max reward cap
  // On-demand keeps collecting after the baselines' die-off point.
  int late_measurements = 0;
  for (const auto& rm : r.rounds) {
    if (rm.round >= 6) late_measurements += rm.new_measurements;
  }
  EXPECT_GT(late_measurements, 10);
}

TEST(RegressionPin, FixedDefaultCampaign) {
  const auto r = default_campaign(incentive::MechanismKind::kFixed);
  const sim::CampaignMetrics& m = r.campaign;
  EXPECT_LE(m.coverage_pct, 100.0);
  EXPECT_GE(m.completeness_pct, 50.0);
  EXPECT_LE(m.completeness_pct, 90.0);  // must stay below on-demand's band
  EXPECT_LE(m.total_paid, 1000.0);
  // Fixed runs dry: nothing new after round 6.
  for (const auto& rm : r.rounds) {
    if (rm.round >= 7) {
      EXPECT_EQ(rm.new_measurements, 0);
    }
  }
}

TEST(RegressionPin, SteeredDefaultCampaign) {
  const auto r = default_campaign(incentive::MechanismKind::kSteered);
  const sim::CampaignMetrics& m = r.campaign;
  EXPECT_GE(m.coverage_pct, 95.0);
  EXPECT_LE(m.completeness_pct, 70.0);  // the paper's "steered is worst"
  // Steered reprices before every user session: the first users of round 1
  // see the full Rc + mu*delta = 2.5 and the price only decays as their
  // measurements arrive, so the mean *published* reward of round 1 sits
  // strictly inside (Rc, Rc + mu*delta).
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_LT(r.rounds[0].mean_open_reward, 2.5);
  EXPECT_GT(r.rounds[0].mean_open_reward, 0.5);
}

TEST(RegressionPin, MechanismOrderingHoldsOnDefaults) {
  const auto od = default_campaign(incentive::MechanismKind::kOnDemand);
  const auto fx = default_campaign(incentive::MechanismKind::kFixed);
  const auto st = default_campaign(incentive::MechanismKind::kSteered);
  EXPECT_GT(od.campaign.completeness_pct, fx.campaign.completeness_pct);
  EXPECT_GT(fx.campaign.completeness_pct, st.campaign.completeness_pct);
  EXPECT_LT(od.campaign.measurement_variance,
            fx.campaign.measurement_variance);
  EXPECT_LT(od.campaign.avg_reward_per_measurement,
            fx.campaign.avg_reward_per_measurement);
}

}  // namespace
}  // namespace mcs
