// Bit-level reproducibility guarantees: everything observable is a pure
// function of the documented seeds. These are the tests that keep results
// in EXPERIMENTS.md regenerable forever.
#include <gtest/gtest.h>

#include "exp/figures.h"
#include "exp/runner.h"
#include "sat/sat_round.h"
#include "sim/serialize.h"

namespace mcs {
namespace {

exp::ExperimentConfig cfg_for(incentive::MechanismKind kind,
                              select::SelectorKind sel) {
  exp::ExperimentConfig cfg;
  cfg.scenario.num_users = 35;
  cfg.scenario.num_tasks = 9;
  cfg.scenario.required_measurements = 5;
  cfg.mechanism = kind;
  cfg.selector = sel;
  cfg.repetitions = 2;
  cfg.max_rounds = 8;
  return cfg;
}

TEST(Determinism, EveryMechanismSelectorPairBitReproducible) {
  for (const auto kind :
       {incentive::MechanismKind::kOnDemand, incentive::MechanismKind::kFixed,
        incentive::MechanismKind::kSteered,
        incentive::MechanismKind::kParticipation}) {
    for (const auto sel :
         {select::SelectorKind::kGreedy, select::SelectorKind::kDp,
          select::SelectorKind::kIls}) {
      const auto cfg = cfg_for(kind, sel);
      const exp::RepetitionResult a = run_repetition(cfg, 12345);
      const exp::RepetitionResult b = run_repetition(cfg, 12345);
      EXPECT_EQ(a.campaign.per_task_received, b.campaign.per_task_received)
          << incentive::mechanism_name(kind) << "/"
          << select::selector_name(sel);
      EXPECT_DOUBLE_EQ(a.campaign.total_paid, b.campaign.total_paid);
      EXPECT_DOUBLE_EQ(a.campaign.reward_gini, b.campaign.reward_gini);
      ASSERT_EQ(a.rounds.size(), b.rounds.size());
      for (std::size_t k = 0; k < a.rounds.size(); ++k) {
        EXPECT_EQ(a.rounds[k].new_measurements, b.rounds[k].new_measurements);
        EXPECT_DOUBLE_EQ(a.rounds[k].mean_open_reward,
                         b.rounds[k].mean_open_reward);
      }
    }
  }
}

TEST(Determinism, WorldJsonSnapshotsIdentical) {
  // The strongest equality: the serialized end-of-campaign world matches
  // byte for byte across runs.
  const auto cfg = cfg_for(incentive::MechanismKind::kOnDemand,
                           select::SelectorKind::kDp);
  auto snapshot = [&cfg]() {
    Rng rng(777);
    model::World world = sim::generate_world(cfg.scenario, rng);
    Rng mech_rng = rng.split(0xfeed);
    auto mech = incentive::make_mechanism(cfg.mechanism, world,
                                          cfg.mech_params, mech_rng);
    auto sel = select::make_selector(cfg.selector, cfg.dp_candidate_cap);
    sim::Simulator s(std::move(world), std::move(mech), std::move(sel), {});
    s.run();
    return sim::world_to_json(s.world()).dump(2);
  };
  EXPECT_EQ(snapshot(), snapshot());
}

TEST(Determinism, SatPipelineBitReproducible) {
  auto run = []() {
    sim::ScenarioParams p;
    p.num_users = 40;
    p.num_tasks = 10;
    Rng rng(31);
    model::World w = sim::generate_world(p, rng);
    Money paid = 0.0;
    for (Round k = 1; k <= 10; ++k) {
      paid += sat::run_sat_round(w, k, {}).total_paid;
    }
    return std::pair<Money, long long>(paid, w.total_received());
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, SeedsActuallyMatter) {
  const auto cfg = cfg_for(incentive::MechanismKind::kOnDemand,
                           select::SelectorKind::kGreedy);
  const exp::RepetitionResult a = run_repetition(cfg, 1);
  const exp::RepetitionResult b = run_repetition(cfg, 2);
  EXPECT_NE(a.campaign.per_task_received, b.campaign.per_task_received);
}

TEST(Determinism, MobilityStreamsIndependentOfMechanismStreams) {
  // Changing only the mechanism must not change user mobility draws: with
  // random-waypoint mobility, the same seeds yield identical per-round user
  // start locations whichever mechanism runs. Proxy: fixed vs steered
  // campaigns on identical seeds have identical *first-round* instance
  // geometry, hence identical candidate counts... simplest observable:
  // world generation is mechanism-independent.
  exp::ExperimentConfig cfg = cfg_for(incentive::MechanismKind::kFixed,
                                      select::SelectorKind::kGreedy);
  cfg.mobility = sim::MobilityKind::kRandomWaypoint;
  exp::ExperimentConfig cfg2 = cfg;
  cfg2.mechanism = incentive::MechanismKind::kSteered;
  const exp::RepetitionResult a = run_repetition(cfg, 99);
  const exp::RepetitionResult b = run_repetition(cfg2, 99);
  // Same worlds: the per-task *requirements* and geometry match, so the
  // total required is equal even though outcomes differ.
  EXPECT_EQ(a.campaign.per_task_received.size(),
            b.campaign.per_task_received.size());
}

}  // namespace
}  // namespace mcs
