// Randomized configuration fuzzing: draw many small-but-weird scenario and
// mechanism configurations, run whole campaigns, and assert the global
// invariants. Complements campaign_test.cpp (which pins the paper-scale
// setup) by exploring corners: one user, one task, tiny/huge budgets,
// instant deadlines, heterogeneous phi, every mobility model.
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/runner.h"
#include "sim/fairness.h"

namespace mcs {
namespace {

exp::ExperimentConfig random_config(Rng& rng) {
  exp::ExperimentConfig cfg;
  cfg.scenario.area_side = rng.uniform(200.0, 5000.0);
  cfg.scenario.num_tasks = static_cast<int>(rng.uniform_int(1, 12));
  cfg.scenario.num_users = static_cast<int>(rng.uniform_int(1, 40));
  cfg.scenario.required_measurements = static_cast<int>(rng.uniform_int(1, 8));
  cfg.scenario.required_spread = static_cast<int>(rng.uniform_int(0, 3));
  cfg.scenario.deadline_min = static_cast<Round>(rng.uniform_int(1, 4));
  cfg.scenario.deadline_max =
      cfg.scenario.deadline_min + static_cast<Round>(rng.uniform_int(0, 8));
  cfg.scenario.user_budget_min_s = rng.uniform(0.0, 400.0);
  cfg.scenario.user_budget_max_s =
      cfg.scenario.user_budget_min_s + rng.uniform(0.0, 800.0);
  cfg.scenario.neighbor_radius = rng.uniform(0.0, 1000.0);
  cfg.scenario.cost_per_meter = rng.uniform(0.0, 0.01);

  // Budget must satisfy Eq. 9: keep r0 > 0 by construction.
  cfg.mech_params.demand_levels = static_cast<int>(rng.uniform_int(1, 6));
  cfg.mech_params.lambda = rng.uniform(0.0, 0.6);
  const double total_required_upper =
      static_cast<double>(cfg.scenario.num_tasks) *
      (cfg.scenario.required_measurements + cfg.scenario.required_spread);
  cfg.mech_params.platform_budget =
      total_required_upper *
      (cfg.mech_params.lambda * (cfg.mech_params.demand_levels - 1) +
       rng.uniform(0.1, 3.0));

  const incentive::MechanismKind kinds[] = {
      incentive::MechanismKind::kOnDemand, incentive::MechanismKind::kFixed,
      incentive::MechanismKind::kSteered,
      incentive::MechanismKind::kParticipation};
  cfg.mechanism = kinds[rng.uniform_int(0, 3)];
  const select::SelectorKind selectors[] = {
      select::SelectorKind::kGreedy, select::SelectorKind::kDp,
      select::SelectorKind::kBeamSearch, select::SelectorKind::kGreedy2Opt};
  cfg.selector = selectors[rng.uniform_int(0, 3)];
  const sim::MobilityKind mobilities[] = {
      sim::MobilityKind::kStaticHome, sim::MobilityKind::kRandomWaypoint,
      sim::MobilityKind::kGaussianDrift, sim::MobilityKind::kCommute};
  cfg.mobility = mobilities[rng.uniform_int(0, 3)];
  cfg.max_rounds = static_cast<Round>(rng.uniform_int(1, 12));
  cfg.repetitions = 1;
  return cfg;
}

class FuzzInvariants : public ::testing::TestWithParam<int> {};

TEST_P(FuzzInvariants, CampaignsNeverBreakInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 25; ++trial) {
    const exp::ExperimentConfig cfg = random_config(rng);
    SCOPED_TRACE(::testing::Message()
                 << "seed-group " << GetParam() << " trial " << trial
                 << " mech=" << incentive::mechanism_name(cfg.mechanism)
                 << " sel=" << select::selector_name(cfg.selector)
                 << " mob=" << sim::mobility_name(cfg.mobility)
                 << " tasks=" << cfg.scenario.num_tasks
                 << " users=" << cfg.scenario.num_users);

    const exp::RepetitionResult r = run_repetition(cfg, rng.next());
    const sim::CampaignMetrics& m = r.campaign;

    // Percentages in range.
    for (const double pct :
         {m.coverage_pct, m.completeness_pct, m.tasks_completed_pct}) {
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0 + 1e-9);
    }
    // Counting sanity.
    EXPECT_GE(m.total_measurements, 0);
    EXPECT_LE(m.total_measurements,
              static_cast<long long>(cfg.scenario.num_tasks) *
                  cfg.scenario.num_users);
    EXPECT_EQ(m.per_task_received.size(),
              static_cast<std::size_t>(cfg.scenario.num_tasks));
    long long sum = 0;
    for (const int c : m.per_task_received) {
      EXPECT_GE(c, 0);
      EXPECT_LE(c, cfg.scenario.num_users);
      sum += c;
    }
    EXPECT_EQ(sum, m.total_measurements);
    // Money sanity.
    EXPECT_GE(m.total_paid, 0.0);
    if (m.total_measurements == 0) {
      EXPECT_DOUBLE_EQ(m.total_paid, 0.0);
      EXPECT_DOUBLE_EQ(m.avg_reward_per_measurement, 0.0);
    } else {
      EXPECT_NEAR(m.avg_reward_per_measurement,
                  m.total_paid / static_cast<double>(m.total_measurements),
                  1e-9);
    }
    // Demand-level mechanisms respect the budget (steered is uncoupled).
    if (cfg.mechanism != incentive::MechanismKind::kSteered) {
      EXPECT_LE(m.total_paid,
                cfg.mech_params.platform_budget + m.budget_overdraft + 1e-6);
    }
    // Fairness metrics in range.
    EXPECT_GE(m.reward_gini, 0.0);
    EXPECT_LE(m.reward_gini, 1.0);
    EXPECT_GT(m.reward_jain, 0.0);
    EXPECT_LE(m.reward_jain, 1.0 + 1e-12);
    EXPECT_GE(m.active_user_fraction, 0.0);
    EXPECT_LE(m.active_user_fraction, 1.0);
    // Round history is coherent.
    long long cumulative = 0;
    for (const sim::RoundMetrics& rm : r.rounds) {
      EXPECT_GE(rm.new_measurements, 0);
      cumulative += rm.new_measurements;
      EXPECT_EQ(rm.total_measurements, cumulative);
      EXPECT_GE(rm.payout, -1e-9);
      EXPECT_GE(rm.open_tasks, 0);
      EXPECT_LE(rm.open_tasks, cfg.scenario.num_tasks);
    }
    EXPECT_EQ(cumulative, m.total_measurements);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedGroups, FuzzInvariants, ::testing::Range(0, 8));

}  // namespace
}  // namespace mcs
