// End-to-end campaigns on paper-scale scenarios: every system invariant
// that must hold across a whole simulation, for every mechanism and both
// main selectors.
#include <gtest/gtest.h>

#include <set>

#include "exp/runner.h"
#include "incentive/mechanism.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs {
namespace {

struct CampaignCase {
  incentive::MechanismKind mechanism;
  select::SelectorKind selector;
};

class CampaignInvariants : public ::testing::TestWithParam<CampaignCase> {};

TEST_P(CampaignInvariants, HoldOverFullCampaign) {
  const CampaignCase cc = GetParam();
  sim::ScenarioParams params;
  params.num_users = 60;  // keep the DP cases quick
  Rng rng(2024);
  model::World world = sim::generate_world(params, rng);
  const long long total_required = world.total_required();

  incentive::MechanismParams mp;
  Rng mech_rng = rng.split(1);
  auto mech = incentive::make_mechanism(cc.mechanism, world, mp, mech_rng);
  auto sel = select::make_selector(cc.selector, 14);
  sim::SimulatorParams sp;
  sp.max_rounds = 15;
  sp.platform_budget = mp.platform_budget;
  sp.record_events = true;
  sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);

  Money paid_so_far = 0.0;
  long long seen = 0;
  while (s.current_round() < 15 && !s.all_tasks_closed()) {
    const sim::RoundMetrics& rm = s.step();

    // Measurement accounting is exact and monotone.
    EXPECT_EQ(rm.total_measurements, seen + rm.new_measurements);
    seen = rm.total_measurements;

    // Coverage and completeness are percentages and never regress.
    EXPECT_GE(rm.coverage_pct, 0.0);
    EXPECT_LE(rm.coverage_pct, 100.0);
    EXPECT_GE(rm.completeness_pct, 0.0);
    EXPECT_LE(rm.completeness_pct, 100.0);
    if (s.history().size() >= 2) {
      const auto& prev = s.history()[s.history().size() - 2];
      EXPECT_GE(rm.coverage_pct, prev.coverage_pct);
      EXPECT_GE(rm.completeness_pct, prev.completeness_pct);
    }

    // Rational users: per-round profit of every user is non-negative.
    for (const Money p : rm.user_profit) EXPECT_GE(p, -1e-9);

    // Payouts are non-negative and accumulate into the tracker.
    EXPECT_GE(rm.payout, 0.0);
    paid_so_far += rm.payout;
    EXPECT_NEAR(paid_so_far, s.budget().spent(), 1e-9);
  }

  const sim::CampaignMetrics m = s.summary();

  // The platform never pays more than the worst case of Eq. 8 allows; with
  // the paper's parameterization that bound equals the budget, and in
  // practice the spend stays below it (overflow within a completing round
  // is possible in principle, which is why overdraft is tracked).
  EXPECT_DOUBLE_EQ(m.budget_overdraft, s.budget().overdraft());
  if (cc.mechanism != incentive::MechanismKind::kSteered) {
    EXPECT_LE(s.budget().spent(),
              sp.platform_budget + 2.5 /*one max-reward of slack*/);
  }

  // Each user contributed at most once per task; totals are consistent.
  EXPECT_EQ(m.total_measurements, s.world().total_received());
  EXPECT_LE(m.total_measurements,
            static_cast<long long>(s.world().num_users()) *
                static_cast<long long>(s.world().num_tasks()));
  for (const model::Task& t : s.world().tasks()) {
    std::set<UserId> users;
    for (const auto& e : t.measurements()) {
      EXPECT_TRUE(users.insert(e.user).second);
      EXPECT_LE(e.round, t.deadline());
    }
  }

  // Useful measurements never exceed the requirement.
  long long useful = 0;
  for (const model::Task& t : s.world().tasks()) {
    useful += std::min(t.received(), t.required());
  }
  EXPECT_LE(useful, total_required);
  EXPECT_NEAR(m.completeness_pct,
              100.0 * static_cast<double>(useful) /
                  static_cast<double>(total_required),
              1e-9);

  // The event trace is a faithful journal.
  EXPECT_EQ(static_cast<long long>(s.events().size()), m.total_measurements);
  Money trace_paid = 0.0;
  for (const auto& e : s.events().events()) trace_paid += e.reward;
  EXPECT_NEAR(trace_paid, s.budget().spent(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsAndSelectors, CampaignInvariants,
    ::testing::Values(
        CampaignCase{incentive::MechanismKind::kOnDemand,
                     select::SelectorKind::kDp},
        CampaignCase{incentive::MechanismKind::kOnDemand,
                     select::SelectorKind::kGreedy},
        CampaignCase{incentive::MechanismKind::kFixed,
                     select::SelectorKind::kDp},
        CampaignCase{incentive::MechanismKind::kFixed,
                     select::SelectorKind::kGreedy},
        CampaignCase{incentive::MechanismKind::kSteered,
                     select::SelectorKind::kDp},
        CampaignCase{incentive::MechanismKind::kSteered,
                     select::SelectorKind::kGreedy},
        CampaignCase{incentive::MechanismKind::kOnDemand,
                     select::SelectorKind::kGreedy2Opt},
        CampaignCase{incentive::MechanismKind::kOnDemand,
                     select::SelectorKind::kBranchBound}));

}  // namespace
}  // namespace mcs
