#include "incentive/demand_level.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::incentive {
namespace {

TEST(DemandLevel, PaperTableIII) {
  const DemandLevelScale s(5);
  // Table III: [0,0.2]->1, (0.2,0.4]->2, (0.4,0.6]->3, (0.6,0.8]->4,
  // (0.8,1.0]->5.
  EXPECT_EQ(s.level(0.0), 1);
  EXPECT_EQ(s.level(0.1), 1);
  EXPECT_EQ(s.level(0.2), 1);
  EXPECT_EQ(s.level(0.2000001), 2);
  EXPECT_EQ(s.level(0.4), 2);
  EXPECT_EQ(s.level(0.5), 3);
  EXPECT_EQ(s.level(0.6), 3);
  EXPECT_EQ(s.level(0.8), 4);
  EXPECT_EQ(s.level(0.80001), 5);
  EXPECT_EQ(s.level(1.0), 5);
}

TEST(DemandLevel, ClampsOutOfRangeInputs) {
  const DemandLevelScale s(5);
  EXPECT_EQ(s.level(-0.5), 1);
  EXPECT_EQ(s.level(1.5), 5);
}

TEST(DemandLevel, SingleLevelScale) {
  const DemandLevelScale s(1);
  EXPECT_EQ(s.level(0.0), 1);
  EXPECT_EQ(s.level(0.99), 1);
  EXPECT_EQ(s.level(1.0), 1);
}

TEST(DemandLevel, BucketEdges) {
  const DemandLevelScale s(5);
  EXPECT_DOUBLE_EQ(s.bucket_low(1), 0.0);
  EXPECT_DOUBLE_EQ(s.bucket_high(1), 0.2);
  EXPECT_DOUBLE_EQ(s.bucket_low(5), 0.8);
  EXPECT_DOUBLE_EQ(s.bucket_high(5), 1.0);
  EXPECT_THROW(s.bucket_low(0), Error);
  EXPECT_THROW(s.bucket_high(6), Error);
}

TEST(DemandLevel, VectorHelper) {
  const DemandLevelScale s(5);
  const auto levels = s.levels_for({0.0, 0.35, 0.99});
  EXPECT_EQ(levels, (std::vector<int>{1, 2, 5}));
}

TEST(DemandLevel, RejectsBadLevelCount) {
  EXPECT_THROW(DemandLevelScale(0), Error);
  EXPECT_THROW(DemandLevelScale(-3), Error);
}

// Property: for any N, levels are monotone in demand, every level 1..N is
// reachable, and bucket edges agree with level().
class DemandLevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(DemandLevelProperty, MonotoneAndConsistent) {
  const int n = GetParam();
  const DemandLevelScale s(n);
  int prev = 1;
  for (int i = 0; i <= 1000; ++i) {
    const double d = static_cast<double>(i) / 1000.0;
    const int lvl = s.level(d);
    EXPECT_GE(lvl, prev);  // monotone
    EXPECT_GE(lvl, 1);
    EXPECT_LE(lvl, n);
    prev = lvl;
  }
  for (int lvl = 1; lvl <= n; ++lvl) {
    // The bucket midpoint must map back to its level.
    const double mid = 0.5 * (s.bucket_low(lvl) + s.bucket_high(lvl));
    EXPECT_EQ(s.level(mid), lvl);
    // The inclusive upper edge belongs to the level.
    EXPECT_EQ(s.level(s.bucket_high(lvl)), lvl);
  }
}

INSTANTIATE_TEST_SUITE_P(LevelCounts, DemandLevelProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 100));

}  // namespace
}  // namespace mcs::incentive
