#include "incentive/reward.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::incentive {
namespace {

TEST(RewardRule, Eq7Linear) {
  const RewardRule r(0.5, 0.5, 5);
  EXPECT_DOUBLE_EQ(r.reward(1), 0.5);
  EXPECT_DOUBLE_EQ(r.reward(2), 1.0);
  EXPECT_DOUBLE_EQ(r.reward(3), 1.5);
  EXPECT_DOUBLE_EQ(r.reward(4), 2.0);
  EXPECT_DOUBLE_EQ(r.reward(5), 2.5);
  EXPECT_DOUBLE_EQ(r.min_reward(), 0.5);
  EXPECT_DOUBLE_EQ(r.max_reward(), 2.5);
}

TEST(RewardRule, Eq9PaperInstantiation) {
  // B=$1000, 20 tasks x 20 measurements, lambda=0.5, N=5 -> r0=$0.5 (§VI).
  const RewardRule r = RewardRule::from_budget(1000.0, 400, 0.5, 5);
  EXPECT_DOUBLE_EQ(r.r0(), 0.5);
  EXPECT_DOUBLE_EQ(r.lambda(), 0.5);
  EXPECT_EQ(r.levels(), 5);
}

TEST(RewardRule, Eq8WorstCaseNeverExceedsBudget) {
  for (const double budget : {500.0, 1000.0, 5000.0}) {
    for (const long long total : {100LL, 400LL, 999LL}) {
      for (const double lambda : {0.1, 0.5}) {
        for (const int levels : {2, 5, 8}) {
          const double r0 =
              budget / static_cast<double>(total) - lambda * (levels - 1);
          if (r0 <= 0.0) continue;  // Eq. 9 infeasible at this combination
          const RewardRule r =
              RewardRule::from_budget(budget, total, lambda, levels);
          EXPECT_LE(r.worst_case_payout(total), budget + 1e-9);
          // And the bound is tight: Eq. 9 is an equality.
          EXPECT_NEAR(r.worst_case_payout(total), budget, 1e-9);
        }
      }
    }
  }
}

TEST(RewardRule, BudgetTooSmallThrows) {
  // r0 would be 1000/400 - 10*(5-1) < 0.
  EXPECT_THROW(RewardRule::from_budget(1000.0, 400, 10.0, 5), Error);
  EXPECT_THROW(RewardRule::from_budget(0.0, 400, 0.5, 5), Error);
  EXPECT_THROW(RewardRule::from_budget(1000.0, 0, 0.5, 5), Error);
}

TEST(RewardRule, LevelRangeChecked) {
  const RewardRule r(1.0, 0.5, 5);
  EXPECT_THROW(r.reward(0), Error);
  EXPECT_THROW(r.reward(6), Error);
}

TEST(RewardRule, ZeroLambdaIsFlat) {
  const RewardRule r(2.0, 0.0, 5);
  EXPECT_DOUBLE_EQ(r.reward(1), 2.0);
  EXPECT_DOUBLE_EQ(r.reward(5), 2.0);
}

TEST(RewardRule, ConstructionValidation) {
  EXPECT_THROW(RewardRule(0.0, 0.5, 5), Error);
  EXPECT_THROW(RewardRule(-1.0, 0.5, 5), Error);
  EXPECT_THROW(RewardRule(1.0, -0.5, 5), Error);
  EXPECT_THROW(RewardRule(1.0, 0.5, 0), Error);
}

// Property: rewards are monotone in the level and bounded by
// [r0, r0 + lambda*(N-1)].
class RewardRuleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RewardRuleProperty, MonotoneAndBounded) {
  const int levels = GetParam();
  const RewardRule r = RewardRule::from_budget(2000.0, 500, 0.25, levels);
  double prev = 0.0;
  for (int lvl = 1; lvl <= levels; ++lvl) {
    const double reward = r.reward(lvl);
    EXPECT_GT(reward, prev);
    EXPECT_GE(reward, r.min_reward());
    EXPECT_LE(reward, r.max_reward());
    prev = reward;
  }
}

INSTANTIATE_TEST_SUITE_P(LevelCounts, RewardRuleProperty,
                         ::testing::Values(2, 3, 5, 10));

}  // namespace
}  // namespace mcs::incentive
