#include "incentive/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "incentive/fixed_mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/steered_mechanism.h"

namespace mcs::incentive {
namespace {

model::World small_world() {
  model::World w(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0);
  w.add_task({100, 100}, 10, 4);     // popular corner
  w.add_task({2900, 2900}, 10, 4);   // remote corner
  w.add_task({1500, 1500}, 3, 4);    // tight deadline, center
  w.add_user({150, 100}, 600.0);
  w.add_user({120, 140}, 600.0);
  w.add_user({1400, 1500}, 600.0);
  return w;
}

RewardRule paper_rule() { return RewardRule(0.5, 0.5, 5); }

TEST(OnDemandMechanism, RewardsTrackDemandLevels) {
  model::World w = small_world();
  OnDemandMechanism m(DemandIndicator::with_paper_defaults(),
                      DemandLevelScale(5), paper_rule());
  m.update_rewards(w, 1);
  ASSERT_EQ(m.rewards().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const int lvl = m.last_levels()[i];
    EXPECT_DOUBLE_EQ(m.reward(static_cast<TaskId>(i)),
                     paper_rule().reward(lvl));
  }
  // The remote task (no neighbors) must out-earn the popular one.
  EXPECT_GE(m.reward(1), m.reward(0));
  // Rewards stay inside the rule's range for open tasks.
  for (const Money r : m.rewards()) {
    EXPECT_GE(r, paper_rule().min_reward());
    EXPECT_LE(r, paper_rule().max_reward());
  }
}

TEST(OnDemandMechanism, RewardRisesAsDeadlineApproaches) {
  model::World w = small_world();
  OnDemandMechanism m(DemandIndicator::with_paper_defaults(),
                      DemandLevelScale(5), paper_rule());
  m.update_rewards(w, 1);
  const double demand_early = m.last_normalized_demands()[2];
  m.update_rewards(w, 3);  // task 2's final round
  const double demand_late = m.last_normalized_demands()[2];
  EXPECT_GT(demand_late, demand_early);
}

TEST(OnDemandMechanism, RewardDropsAsProgressArrives) {
  model::World w = small_world();
  OnDemandMechanism m(DemandIndicator::with_paper_defaults(),
                      DemandLevelScale(5), paper_rule());
  m.update_rewards(w, 2);
  const double before = m.last_normalized_demands()[0];
  w.task(0).add_measurement(0, 2, 1.0);
  w.task(0).add_measurement(1, 2, 1.0);
  w.task(0).add_measurement(2, 2, 1.0);
  m.update_rewards(w, 2);
  const double after = m.last_normalized_demands()[0];
  EXPECT_LT(after, before);
}

TEST(OnDemandMechanism, WithdrawsCompletedAndExpiredTasks) {
  model::World w = small_world();
  OnDemandMechanism m(DemandIndicator::with_paper_defaults(),
                      DemandLevelScale(5), paper_rule());
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 1.0);
  m.update_rewards(w, 4);  // task 2 (deadline 3) has expired by round 4
  EXPECT_DOUBLE_EQ(m.reward(0), 0.0);  // completed
  EXPECT_DOUBLE_EQ(m.reward(2), 0.0);  // expired
  EXPECT_GT(m.reward(1), 0.0);         // still open
}

TEST(OnDemandMechanism, NotIntraRound) {
  OnDemandMechanism m(DemandIndicator::with_paper_defaults(),
                      DemandLevelScale(5), paper_rule());
  EXPECT_FALSE(m.updates_within_round());
}

TEST(FixedMechanism, RewardsNeverChange) {
  model::World w = small_world();
  Rng rng(5);
  FixedMechanism m(paper_rule(), w.num_tasks(), rng);
  m.update_rewards(w, 1);
  const auto initial = m.rewards();
  w.task(0).add_measurement(0, 1, 1.0);  // progress changes...
  m.update_rewards(w, 2);
  EXPECT_EQ(m.rewards(), initial);  // ...rewards do not
}

TEST(FixedMechanism, LevelsInRangeAndVaried) {
  Rng rng(6);
  const RewardRule rule = paper_rule();
  FixedMechanism m(rule, 200, rng);
  bool seen_different = false;
  for (const int lvl : m.levels()) {
    EXPECT_GE(lvl, 1);
    EXPECT_LE(lvl, 5);
    if (lvl != m.levels()[0]) seen_different = true;
  }
  EXPECT_TRUE(seen_different);  // 200 draws: surely not all equal
}

TEST(FixedMechanism, ExplicitLevels) {
  model::World w = small_world();
  FixedMechanism m(paper_rule(), {1, 3, 5});
  m.update_rewards(w, 1);
  EXPECT_DOUBLE_EQ(m.reward(0), 0.5);
  EXPECT_DOUBLE_EQ(m.reward(1), 1.5);
  EXPECT_DOUBLE_EQ(m.reward(2), 2.5);
  EXPECT_THROW(FixedMechanism(paper_rule(), {0}), Error);
  EXPECT_THROW(FixedMechanism(paper_rule(), {6}), Error);
}

TEST(FixedMechanism, WithdrawsClosedTasksButKeepsLevel) {
  model::World w = small_world();
  FixedMechanism m(paper_rule(), {2, 2, 2});
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 1.0);
  m.update_rewards(w, 2);
  EXPECT_DOUBLE_EQ(m.reward(0), 0.0);
  EXPECT_DOUBLE_EQ(m.reward(1), 1.0);
}

TEST(FixedMechanism, TaskCountMismatchThrows) {
  model::World w = small_world();
  FixedMechanism m(paper_rule(), {1, 2});
  EXPECT_THROW(m.update_rewards(w, 1), Error);
}

TEST(SteeredMechanism, QualityModelBasics) {
  const SteeredMechanism m(0.5, 10.0, 0.2);
  EXPECT_DOUBLE_EQ(m.quality(0), 0.0);
  EXPECT_NEAR(m.quality(1), 0.2, 1e-12);
  EXPECT_NEAR(m.quality_gain(0), 0.2, 1e-12);
  EXPECT_NEAR(m.quality_gain(1), 0.16, 1e-12);
  // Quality saturates at 1.
  EXPECT_NEAR(m.quality(100), 1.0, 1e-9);
}

TEST(SteeredMechanism, RewardDecaysGeometrically) {
  const SteeredMechanism m(0.5, 10.0, 0.2);
  EXPECT_NEAR(m.reward_at(0), 2.5, 1e-12);  // Rc + mu*delta
  double prev = m.reward_at(0);
  for (int x = 1; x <= 30; ++x) {
    const double r = m.reward_at(x);
    EXPECT_LT(r, prev);      // monotone decreasing
    EXPECT_GT(r, 0.5 - 1e-12);  // bounded below by Rc
    prev = r;
  }
}

TEST(SteeredMechanism, PaperLiteralConstantsSpanFiveToTwentyFive) {
  const SteeredMechanism m(5.0, 100.0, 0.2);
  EXPECT_NEAR(m.reward_at(0), 25.0, 1e-12);
  EXPECT_NEAR(m.reward_at(1000), 5.0, 1e-9);
}

TEST(SteeredMechanism, UpdatesUseReceivedCounts) {
  model::World w = small_world();
  SteeredMechanism m(0.5, 10.0, 0.2);
  m.update_rewards(w, 1);
  EXPECT_NEAR(m.reward(0), 2.5, 1e-12);
  w.task(0).add_measurement(0, 1, 2.5);
  m.update_rewards(w, 1);
  EXPECT_NEAR(m.reward(0), 0.5 + 10.0 * 0.16, 1e-12);
  EXPECT_NEAR(m.reward(1), 2.5, 1e-12);  // untouched task unchanged
}

TEST(SteeredMechanism, IsIntraRound) {
  const SteeredMechanism m(0.5, 10.0, 0.2);
  EXPECT_TRUE(m.updates_within_round());
}

TEST(SteeredMechanism, ConstructionValidation) {
  EXPECT_THROW(SteeredMechanism(-1.0, 10.0, 0.2), Error);
  EXPECT_THROW(SteeredMechanism(0.5, -1.0, 0.2), Error);
  EXPECT_THROW(SteeredMechanism(0.5, 10.0, 0.0), Error);
  EXPECT_THROW(SteeredMechanism(0.5, 10.0, 1.0), Error);
}

TEST(MechanismFactory, BuildsAllKindsWithDerivedRewardRule) {
  model::World w = small_world();  // total required = 12
  MechanismParams params;
  params.platform_budget = 120.0;  // r0 = 120/12 - 0.5*4 = 8
  Rng rng(3);
  for (const auto kind :
       {MechanismKind::kOnDemand, MechanismKind::kFixed,
        MechanismKind::kSteered}) {
    const auto m = make_mechanism(kind, w, params, rng);
    ASSERT_NE(m, nullptr);
    m->update_rewards(w, 1);
    EXPECT_EQ(m->rewards().size(), w.num_tasks());
    EXPECT_STREQ(m->name(), mechanism_name(kind));
  }
}

TEST(MechanismFactory, ParseNames) {
  EXPECT_EQ(parse_mechanism("on-demand"), MechanismKind::kOnDemand);
  EXPECT_EQ(parse_mechanism("Demand"), MechanismKind::kOnDemand);
  EXPECT_EQ(parse_mechanism("fixed"), MechanismKind::kFixed);
  EXPECT_EQ(parse_mechanism("steered"), MechanismKind::kSteered);
  EXPECT_THROW(parse_mechanism("generous"), Error);
}

TEST(Mechanism, RewardQueryBeforeUpdateThrows) {
  const SteeredMechanism m(0.5, 10.0, 0.2);
  EXPECT_THROW(m.reward(0), Error);
}

}  // namespace
}  // namespace mcs::incentive
