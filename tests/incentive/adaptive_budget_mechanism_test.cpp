#include "incentive/adaptive_budget_mechanism.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "select/selector.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace mcs::incentive {
namespace {

model::World small_world() {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 200.0);
  w.add_task({100, 100}, 10, 4);
  w.add_task({900, 900}, 10, 4);
  for (int i = 0; i < 6; ++i) w.add_user({500, 500}, 400.0);
  return w;
}

AdaptiveBudgetMechanism make(Money budget = 20.0) {
  // 8 required measurements; Eq. 9 initial r0 = budget/8 - 0.5*4.
  return AdaptiveBudgetMechanism(DemandIndicator::with_paper_defaults(),
                                 DemandLevelScale(5), budget, 0.5);
}

TEST(AdaptiveBudget, FirstRoundMatchesStaticEq9) {
  model::World w = small_world();
  AdaptiveBudgetMechanism m = make(20.0);  // r0 = 20/8 - 2 = 0.5
  m.update_rewards(w, 1);
  EXPECT_DOUBLE_EQ(m.current_rule().r0(), 0.5);
  EXPECT_DOUBLE_EQ(m.current_rule().max_reward(), 2.5);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(m.reward(static_cast<TaskId>(i)), 0.5);
    EXPECT_LE(m.reward(static_cast<TaskId>(i)), 2.5);
  }
}

TEST(AdaptiveBudget, SlackFlowsBackIntoRewards) {
  model::World w = small_world();
  AdaptiveBudgetMechanism m = make(20.0);
  m.update_rewards(w, 1);
  // Cheap progress: 4 measurements bought at $1 each. Remaining budget 16
  // for 4 missing -> r0 = 16/4 - 2 = 2 > initial 0.5.
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 1.0);
  m.update_rewards(w, 2);
  EXPECT_DOUBLE_EQ(m.current_rule().r0(), 2.0);
  EXPECT_DOUBLE_EQ(m.reward(0), 0.0);  // task 0 completed -> withdrawn
  EXPECT_GT(m.reward(1), 0.5);
}

TEST(AdaptiveBudget, NeverBelowInitialRule) {
  model::World w = small_world();
  AdaptiveBudgetMechanism m = make(20.0);
  m.update_rewards(w, 1);
  // Expensive progress: pay max for everything -> no slack accumulates and
  // r0 stays clamped at the initial value, never below.
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 2.5);
  m.update_rewards(w, 2);
  EXPECT_GE(m.current_rule().r0(), 0.5);
}

TEST(AdaptiveBudget, EscalationCapHolds) {
  model::World w = small_world();
  AdaptiveBudgetMechanism m(DemandIndicator::with_paper_defaults(),
                            DemandLevelScale(5), 20.0, 0.5,
                            /*r0_cap_factor=*/3.0);
  m.update_rewards(w, 1);
  // Complete 7 of 8 for free: huge remaining-per-missing ratio, capped.
  for (int u = 0; u < 4; ++u) w.task(0).add_measurement(u, 1, 0.0);
  for (int u = 0; u < 3; ++u) w.task(1).add_measurement(u, 1, 0.0);
  m.update_rewards(w, 2);
  EXPECT_DOUBLE_EQ(m.current_rule().r0(), 1.5);  // 0.5 * 3
}

TEST(AdaptiveBudget, ExhaustedBudgetWithdrawsEverything) {
  model::World w = small_world();
  AdaptiveBudgetMechanism m = make(20.0);
  m.update_rewards(w, 1);
  for (int u = 0; u < 5; ++u) w.task(0).add_measurement(u, 1, 4.0);  // $20
  m.update_rewards(w, 2);
  EXPECT_DOUBLE_EQ(m.reward(1), 0.0);
}

TEST(AdaptiveBudget, Validation) {
  EXPECT_THROW(AdaptiveBudgetMechanism(DemandIndicator::with_paper_defaults(),
                                       DemandLevelScale(5), 0.0, 0.5),
               Error);
  EXPECT_THROW(AdaptiveBudgetMechanism(DemandIndicator::with_paper_defaults(),
                                       DemandLevelScale(5), 10.0, -0.1),
               Error);
  EXPECT_THROW(AdaptiveBudgetMechanism(DemandIndicator::with_paper_defaults(),
                                       DemandLevelScale(5), 10.0, 0.5, 0.5),
               Error);
  AdaptiveBudgetMechanism m = make();
  EXPECT_THROW(m.current_rule(), Error);  // before first update
  // Budget too small for Eq. 9 at the first update.
  model::World w = small_world();
  AdaptiveBudgetMechanism tiny = make(1.0);
  EXPECT_THROW(tiny.update_rewards(w, 1), Error);
}

TEST(AdaptiveBudget, FullCampaignStaysWithinBudget) {
  sim::ScenarioParams params;
  params.num_users = 60;
  Rng rng(99);
  model::World world = sim::generate_world(params, rng);
  const Money budget = 1000.0;
  auto mech = std::make_unique<AdaptiveBudgetMechanism>(
      DemandIndicator::with_paper_defaults(), DemandLevelScale(5), budget, 0.5);
  auto sel = select::make_selector(select::SelectorKind::kGreedy);
  sim::SimulatorParams sp;
  sp.platform_budget = budget;
  sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);
  const sim::CampaignMetrics m = s.run();
  // Same-round overflow can exceed the per-round bound slightly; allow one
  // escalated max-reward of slack.
  EXPECT_LE(m.total_paid, budget + 5.0 * 2.5);
  EXPECT_GT(m.completeness_pct, 0.0);
}

}  // namespace
}  // namespace mcs::incentive
