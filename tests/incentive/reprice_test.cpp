// The incremental reprice() contract (mechanism.h): after reprice() the
// mechanism's rewards must be bit-identical to a full update_rewards()
// against the same world. These unit tests drive the on-demand and steered
// dirty paths directly — measurement deltas, user moves picked up through
// the neighbor-count diff, and the Nmax-change full-recompute fallback —
// against a freshly built mechanism as the oracle.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/reward.h"
#include "incentive/steered_mechanism.h"
#include "model/world.h"

namespace mcs::incentive {
namespace {

// Three tasks 600 m apart with radius 500: each user is a neighbor of at
// most one task, so counts (and Nmax) are easy to steer by hand.
model::World make_world() {
  model::World w(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0);
  w.add_task({300.0, 300.0}, /*deadline=*/8, /*required=*/4);
  w.add_task({900.0, 300.0}, 8, 4);
  w.add_task({1500.0, 300.0}, 8, 4);
  w.add_user({300.0, 320.0}, 600.0);   // neighbor of task 0
  w.add_user({300.0, 280.0}, 600.0);   // neighbor of task 0
  w.add_user({900.0, 320.0}, 600.0);   // neighbor of task 1
  return w;
}

OnDemandMechanism make_on_demand() {
  const RewardRule rule = RewardRule::from_budget(1000.0, 12, 0.5, 5);
  return OnDemandMechanism(DemandIndicator::with_paper_defaults(),
                           DemandLevelScale(5), rule);
}

void expect_matches_full(const OnDemandMechanism& m, const model::World& w,
                         Round k) {
  OnDemandMechanism oracle = make_on_demand();
  oracle.update_rewards(w, k);
  EXPECT_EQ(m.rewards(), oracle.rewards());
  EXPECT_EQ(m.last_normalized_demands(), oracle.last_normalized_demands());
  EXPECT_EQ(m.last_levels(), oracle.last_levels());
}

TEST(OnDemandReprice, DirtyMeasurementDeltaMatchesFullRecompute) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // Task 1 gains a measurement (X2 drops): reprice with just that position.
  w.tasks()[1].add_measurement(UserId{2}, 1, 1.0);
  m.reprice(w, 1, {1});
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, CompletionZeroesRewardThroughDirtyPath) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  for (int i = 0; i < 4; ++i) {
    w.tasks()[0].add_measurement(static_cast<UserId>(10 + i), 1, 1.0);
  }
  ASSERT_TRUE(w.tasks()[0].completed());
  m.reprice(w, 1, {0});
  EXPECT_EQ(m.rewards()[0], 0.0);
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, UserMovePickedUpViaNeighborCountDiff) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // User 2 walks from task 1's disc to task 2's: counts go {2,1,0} ->
  // {2,0,1} while Nmax stays 2. No dirty tasks at all — the diff against
  // the cached per-task counts must reprice tasks 1 and 2 on its own.
  w.users()[2].set_location({1500.0, 320.0});
  m.reprice(w, 1, {});
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, NmaxChangeFallsBackToFullRecompute) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // User 2 joins task 0's disc: counts {2,1,0} -> {3,0,0}, Nmax 2 -> 3.
  // Every task's X3 denominator changes; reprice must recompute all of
  // them, dirty set or not.
  w.users()[2].set_location({300.0, 300.0});
  m.reprice(w, 1, {});
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, RoundChangeFallsBackToFullRecompute) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);
  // A new round moves X1 for every task; reprice(k=2) may not reuse the
  // round-1 pricing.
  m.reprice(w, 2, {});
  expect_matches_full(m, w, 2);
}

TEST(OnDemandReprice, RepriceBeforeAnyPublishIsAFullRecompute) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.reprice(w, 1, {});
  expect_matches_full(m, w, 1);
}

// The O(dirty) contract: the fast path must reprice exactly the dirty set
// plus the journaled count changes — never the whole task set — and the
// fallbacks must report full-width work. last_reprice_touched() pins it.
TEST(OnDemandReprice, FastPathTouchesOnlyDirtyAndJournaledPositions) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // Nothing changed: the fast path does zero repricing work.
  m.reprice(w, 1, {});
  EXPECT_EQ(m.last_reprice_touched(), 0u);

  // User 2 walks from task 1's disc to task 2's (Nmax stays 2) and task 0
  // gains a measurement: exactly positions {0} ∪ {1, 2} are repriced.
  w.users()[2].set_location({1500.0, 320.0});
  w.tasks()[0].add_measurement(UserId{7}, 1, 1.0);
  m.reprice(w, 1, {0});
  EXPECT_EQ(m.last_reprice_touched(), 3u);
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, NmaxFallbackReportsFullWidthWork) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // User 2 joins task 0's disc: Nmax 2 -> 3, full recompute.
  w.users()[2].set_location({300.0, 300.0});
  m.reprice(w, 1, {});
  EXPECT_EQ(m.last_reprice_touched(), w.num_tasks());
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, CacheRebuildFallsBackToFullRecompute) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // Growing the population rebuilds the neighbor cache: there is no
  // per-position delta to replay, so reprice must recompute in full (the
  // new user lands in task 2's empty disc, so Nmax alone would not
  // catch it).
  w.add_user({1500.0, 320.0}, 600.0);
  m.reprice(w, 1, {});
  EXPECT_EQ(m.last_reprice_touched(), w.num_tasks());
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, ConsecutiveFastPathsEachConsumeTheirOwnDelta) {
  model::World w = make_world();
  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);

  // Two fast-path reprices in a row, each after one move that keeps
  // Nmax at 2: each must see only its own journal slice.
  w.users()[2].set_location({1500.0, 320.0});  // task 1 -> task 2
  m.reprice(w, 1, {});
  EXPECT_EQ(m.last_reprice_touched(), 2u);

  w.users()[2].set_location({900.0, 320.0});  // back: task 2 -> task 1
  m.reprice(w, 1, {});
  EXPECT_EQ(m.last_reprice_touched(), 2u);
  expect_matches_full(m, w, 1);
}

TEST(OnDemandReprice, ShardedUpdateMatchesSerialBitForBit) {
  // The fused demand/level/reward sweep fans over the reprice pool in
  // disjoint row ranges; every published double must match the serial
  // sweep exactly, at any worker count (including workers > tasks).
  model::World w = make_world();
  OnDemandMechanism serial = make_on_demand();
  serial.update_rewards(w, 1);
  for (const int workers : {2, 8}) {
    SCOPED_TRACE(workers);
    ThreadPool pool(workers);
    OnDemandMechanism m = make_on_demand();
    m.set_reprice_workers(&pool, workers);
    m.update_rewards(w, 1);
    EXPECT_EQ(m.rewards(), serial.rewards());
    EXPECT_EQ(m.last_normalized_demands(), serial.last_normalized_demands());
    EXPECT_EQ(m.last_levels(), serial.last_levels());
  }
}

TEST(OnDemandReprice, SparseTaskIdsPriceByPosition) {
  // Worlds assembled through the mutable tasks() accessor may carry
  // arbitrary (non-dense) ids. The mechanism's whole pipeline — publish,
  // dirty reprice, journal replay — is position-indexed, so sparse ids must
  // price exactly like the dense world with the same geometry.
  model::World w(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0);
  w.tasks().emplace_back(TaskId{40}, geo::Point{300.0, 300.0}, Round{8}, 4);
  w.tasks().emplace_back(TaskId{17}, geo::Point{900.0, 300.0}, Round{8}, 4);
  w.tasks().emplace_back(TaskId{93}, geo::Point{1500.0, 300.0}, Round{8}, 4);
  w.add_user({300.0, 320.0}, 600.0);
  w.add_user({300.0, 280.0}, 600.0);
  w.add_user({900.0, 320.0}, 600.0);

  OnDemandMechanism m = make_on_demand();
  m.update_rewards(w, 1);
  expect_matches_full(m, w, 1);

  model::World dense = make_world();  // same geometry, ids 0..2
  OnDemandMechanism dense_m = make_on_demand();
  dense_m.update_rewards(dense, 1);
  EXPECT_EQ(m.rewards(), dense_m.rewards());

  // The row snapshot is published (built-in mechanisms are row-indexed),
  // and reward-by-id would reject these out-of-range ids — the snapshot is
  // what lets the simulator's bulk phases price sparse worlds at all.
  ASSERT_NE(m.reward_rows(), nullptr);
  EXPECT_EQ(*m.reward_rows(), m.rewards());

  // Dirty reprice stays position-indexed too.
  w.tasks()[1].add_measurement(UserId{5}, 1, 1.0);
  m.reprice(w, 1, {1});
  expect_matches_full(m, w, 1);
}

TEST(SteeredReprice, DirtyMeasurementDeltaMatchesFullRecompute) {
  model::World w = make_world();
  SteeredMechanism m(0.5, 10.0, 0.2);
  m.update_rewards(w, 1);

  w.tasks()[2].add_measurement(UserId{5}, 1, 1.0);
  w.tasks()[2].add_measurement(UserId{6}, 1, 1.0);
  m.reprice(w, 1, {2});

  SteeredMechanism oracle(0.5, 10.0, 0.2);
  oracle.update_rewards(w, 1);
  EXPECT_EQ(m.rewards(), oracle.rewards());
}

TEST(SteeredReprice, EmptyDirtySetIsANoOp) {
  model::World w = make_world();
  SteeredMechanism m(0.5, 10.0, 0.2);
  m.update_rewards(w, 1);
  const std::vector<Money> before = m.rewards();
  m.reprice(w, 1, {});
  EXPECT_EQ(m.rewards(), before);
}

}  // namespace
}  // namespace mcs::incentive
