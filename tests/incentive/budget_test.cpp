#include "incentive/budget.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::incentive {
namespace {

TEST(BudgetTracker, StrictAccounting) {
  BudgetTracker b(100.0);
  EXPECT_DOUBLE_EQ(b.total(), 100.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 100.0);
  b.pay(30.0);
  b.pay(70.0);
  EXPECT_DOUBLE_EQ(b.spent(), 100.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
  EXPECT_DOUBLE_EQ(b.overdraft(), 0.0);
}

TEST(BudgetTracker, StrictRejectsOverdraft) {
  BudgetTracker b(100.0);
  b.pay(99.0);
  EXPECT_FALSE(b.can_afford(2.0));
  EXPECT_THROW(b.pay(2.0), Error);
  EXPECT_DOUBLE_EQ(b.spent(), 99.0);  // failed payment not recorded
}

TEST(BudgetTracker, SoftModeRecordsOverdraft) {
  BudgetTracker b(100.0, /*strict=*/false);
  b.pay(80.0);
  b.pay(30.0);  // would throw in strict mode
  EXPECT_DOUBLE_EQ(b.spent(), 110.0);
  EXPECT_DOUBLE_EQ(b.overdraft(), 10.0);
}

TEST(BudgetTracker, FloatingPointToleranceAtBoundary) {
  BudgetTracker b(0.3);
  b.pay(0.1);
  b.pay(0.1);
  EXPECT_NO_THROW(b.pay(0.1));  // 3*0.1 == 0.30000000000000004
}

TEST(BudgetTracker, NegativePaymentRejected) {
  BudgetTracker b(10.0, /*strict=*/false);
  EXPECT_THROW(b.pay(-1.0), Error);
}

TEST(BudgetTracker, NonPositiveBudgetRejected) {
  EXPECT_THROW(BudgetTracker(0.0), Error);
  EXPECT_THROW(BudgetTracker(-5.0), Error);
}

}  // namespace
}  // namespace mcs::incentive
