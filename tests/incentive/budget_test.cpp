#include "incentive/budget.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::incentive {
namespace {

TEST(BudgetTracker, StrictAccounting) {
  BudgetTracker b(100.0);
  EXPECT_DOUBLE_EQ(b.total(), 100.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 100.0);
  b.pay(30.0);
  b.pay(70.0);
  EXPECT_DOUBLE_EQ(b.spent(), 100.0);
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);
  EXPECT_DOUBLE_EQ(b.overdraft(), 0.0);
}

TEST(BudgetTracker, StrictRejectsOverdraft) {
  BudgetTracker b(100.0);
  b.pay(99.0);
  EXPECT_FALSE(b.can_afford(2.0));
  EXPECT_THROW(b.pay(2.0), Error);
  EXPECT_DOUBLE_EQ(b.spent(), 99.0);  // failed payment not recorded
}

TEST(BudgetTracker, SoftModeRecordsOverdraft) {
  BudgetTracker b(100.0, /*strict=*/false);
  b.pay(80.0);
  b.pay(30.0);  // would throw in strict mode
  EXPECT_DOUBLE_EQ(b.spent(), 110.0);
  EXPECT_DOUBLE_EQ(b.overdraft(), 10.0);
}

TEST(BudgetTracker, FloatingPointToleranceAtBoundary) {
  BudgetTracker b(0.3);
  b.pay(0.1);
  b.pay(0.1);
  EXPECT_NO_THROW(b.pay(0.1));  // 3*0.1 == 0.30000000000000004
}

// Regression: a naive `spent_ += amount` freezes once `amount` drops below
// half an ulp of the running sum — with a 1e9 budget nearly exhausted,
// 5e-8 payments were absorbed without ever advancing spent(), so strict
// mode admitted them forever. The compensated sum must keep counting and
// throw once the (absolute + relative) tolerance is really used up, with
// the overdraft bounded by that tolerance.
TEST(BudgetTracker, ManySmallPaymentsCannotDriftPastTheBudget) {
  const Money total = 1e9;
  BudgetTracker b(total);
  b.pay(total - 0.5);

  const Money tiny = 5e-8;  // < ulp(1e9)/2 ≈ 6e-8: absorbed by a naive sum
  const Money tolerance = 1e-9 + 1e-12 * total;
  // Headroom (0.5) plus tolerance needs ~(0.5 + 1e-3) / 5e-8 ≈ 1.002e7
  // payments; 3e7 is far past it, so a correct accumulator must throw.
  const long long max_payments = 30'000'000;
  bool threw = false;
  long long paid = 0;
  for (; paid < max_payments; ++paid) {
    try {
      b.pay(tiny);
    } catch (const Error&) {
      threw = true;
      break;
    }
  }
  ASSERT_TRUE(threw) << "tiny payments were absorbed, never rejected";
  // The admitted payments really accumulated (no freeze-and-forget)...
  EXPECT_GT(static_cast<double>(paid) * tiny, 0.5 - 1e-6);
  // ...and the strict-mode overdraft stayed within the tolerance bound.
  EXPECT_LE(b.overdraft(), tolerance + tiny);
  EXPECT_GE(b.spent(), total - tolerance - tiny);
}

TEST(BudgetTracker, CompensatedSumIsExactWhereNaiveIsNot) {
  // 1e8 + 1e7 * 5e-9 = 1e8 + 0.05; the naive sum loses every addend
  // (5e-9 < ulp(1e8)/2 ≈ 7.5e-9) and reports 1e8 unchanged.
  BudgetTracker b(2e8, /*strict=*/false);
  b.pay(1e8);
  for (int i = 0; i < 10'000'000; ++i) b.pay(5e-9);
  EXPECT_NEAR(b.spent(), 1e8 + 0.05, 1e-6);
}

TEST(BudgetTracker, ToleranceScalesWithTheBudget) {
  // Absolute term only: a small budget admits a 1e-10 overshoot...
  BudgetTracker small(1.0);
  small.pay(1.0);
  EXPECT_TRUE(small.can_afford(1e-10));
  EXPECT_FALSE(small.can_afford(1e-8));
  // ...and the relative term keeps a huge budget workable at its own ulp
  // scale (1e-5 ≪ one ulp of 1e12 ≈ 1.2e-4, yet far above 1e-9).
  BudgetTracker big(1e12);
  big.pay(1e12);
  EXPECT_TRUE(big.can_afford(1e-5));
  EXPECT_FALSE(big.can_afford(2.0));  // > 1e-9 + 1e-12 * 1e12 ≈ 1.0
}

TEST(BudgetTracker, NegativePaymentRejected) {
  BudgetTracker b(10.0, /*strict=*/false);
  EXPECT_THROW(b.pay(-1.0), Error);
}

TEST(BudgetTracker, NonPositiveBudgetRejected) {
  EXPECT_THROW(BudgetTracker(0.0), Error);
  EXPECT_THROW(BudgetTracker(-5.0), Error);
}

// SubAccount runs the exact Neumaier recurrence pay() runs: feeding one
// payment stream through both must leave identical (sum, comp) words.
TEST(BudgetTrackerSubAccount, MirrorsTrackerRecurrenceBitExact) {
  BudgetTracker tracker(1e9, /*strict=*/false);
  BudgetTracker::SubAccount sub;
  double x = 0.318309886;
  for (int i = 0; i < 1000; ++i) {
    // A deterministic mix of magnitudes, including payments far below one
    // ulp of the accumulated total — the regime Neumaier exists for.
    x = 4.0 * x * (1.0 - x);  // logistic map, stays in (0, 1)
    const Money amount = (i % 7 == 0) ? 1e6 * x : 1e-8 * x;
    tracker.pay(amount);
    sub.add(amount);
  }
  EXPECT_EQ(tracker.spent_raw(), sub.sum);
  EXPECT_EQ(tracker.compensation(), sub.comp);
  EXPECT_EQ(tracker.spent(), sub.total());
}

TEST(BudgetTrackerSubAccount, ResetClearsBothWords) {
  BudgetTracker::SubAccount sub;
  sub.add(1e9);
  sub.add(1e-9);
  EXPECT_GT(sub.total(), 0.0);
  sub.reset();
  EXPECT_EQ(sub.sum, 0.0);
  EXPECT_EQ(sub.comp, 0.0);
  EXPECT_EQ(sub.total(), 0.0);
}

}  // namespace
}  // namespace mcs::incentive
