#include "incentive/participation_mechanism.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::incentive {
namespace {

model::World two_task_world() {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 100.0);
  w.add_task({100, 100}, 10, 5);
  w.add_task({900, 900}, 10, 5);
  for (int i = 0; i < 10; ++i) w.add_user({500, 500}, 600.0);
  return w;
}

RewardRule rule() { return RewardRule(0.5, 0.5, 5); }

TEST(ParticipationMechanism, StartsAtMiddleLevelWithGlobalPrice) {
  model::World w = two_task_world();
  ParticipationMechanism m(rule());
  EXPECT_EQ(m.current_level(), 3);
  m.update_rewards(w, 1);
  EXPECT_DOUBLE_EQ(m.reward(0), 1.5);
  EXPECT_DOUBLE_EQ(m.reward(1), 1.5);  // one global price, location-blind
}

TEST(ParticipationMechanism, ControllerRaisesOnLowParticipation) {
  ParticipationMechanism m(rule(), /*target=*/0.5, /*band=*/0.1);
  m.observe_participation(0.1);
  EXPECT_EQ(m.current_level(), 4);
  m.observe_participation(0.0);
  EXPECT_EQ(m.current_level(), 5);
  m.observe_participation(0.0);
  EXPECT_EQ(m.current_level(), 5);  // clamped at N
}

TEST(ParticipationMechanism, ControllerLowersOnHighParticipation) {
  ParticipationMechanism m(rule(), 0.5, 0.1);
  m.observe_participation(0.9);
  EXPECT_EQ(m.current_level(), 2);
  m.observe_participation(1.0);
  EXPECT_EQ(m.current_level(), 1);
  m.observe_participation(1.0);
  EXPECT_EQ(m.current_level(), 1);  // clamped at 1
}

TEST(ParticipationMechanism, DeadBandHolds) {
  ParticipationMechanism m(rule(), 0.5, 0.1);
  m.observe_participation(0.45);
  m.observe_participation(0.55);
  m.observe_participation(0.5);
  EXPECT_EQ(m.current_level(), 3);
}

TEST(ParticipationMechanism, InfersParticipationFromWorldDelta) {
  model::World w = two_task_world();  // 10 users
  ParticipationMechanism m(rule(), 0.5, 0.1);
  m.update_rewards(w, 1);
  EXPECT_EQ(m.current_level(), 3);
  // One measurement among 10 users = 10% participation -> raise.
  w.task(0).add_measurement(0, 1, 1.5);
  m.update_rewards(w, 2);
  EXPECT_EQ(m.current_level(), 4);
  // Nine more measurements = 90% -> lower.
  for (int u = 1; u < 5; ++u) w.task(0).add_measurement(u, 2, 2.0);
  for (int u = 0; u < 5; ++u) w.task(1).add_measurement(u, 2, 2.0);
  m.update_rewards(w, 3);
  EXPECT_EQ(m.current_level(), 3);
}

TEST(ParticipationMechanism, WithdrawsClosedTasks) {
  model::World w = two_task_world();
  ParticipationMechanism m(rule());
  for (int u = 0; u < 5; ++u) w.task(0).add_measurement(u, 1, 1.5);
  m.update_rewards(w, 2);
  EXPECT_DOUBLE_EQ(m.reward(0), 0.0);
  EXPECT_GT(m.reward(1), 0.0);
}

TEST(ParticipationMechanism, Validation) {
  EXPECT_THROW(ParticipationMechanism(rule(), 0.0, 0.0), Error);
  EXPECT_THROW(ParticipationMechanism(rule(), 1.5, 0.1), Error);
  EXPECT_THROW(ParticipationMechanism(rule(), 0.5, 0.6), Error);
  ParticipationMechanism m(rule());
  EXPECT_THROW(m.observe_participation(-0.1), Error);
  EXPECT_THROW(m.observe_participation(1.2), Error);
}

TEST(ParticipationMechanism, FactoryIntegration) {
  model::World w = two_task_world();  // total required = 10
  MechanismParams params;
  params.platform_budget = 100.0;  // r0 = 10 - 2 = 8
  Rng rng(1);
  const auto m =
      make_mechanism(MechanismKind::kParticipation, w, params, rng);
  EXPECT_STREQ(m->name(), "participation");
  m->update_rewards(w, 1);
  EXPECT_DOUBLE_EQ(m->reward(0), 8.0 + 0.5 * 2);  // level 3
  EXPECT_EQ(parse_mechanism("participation"), MechanismKind::kParticipation);
  EXPECT_EQ(parse_mechanism("radp"), MechanismKind::kParticipation);
}

TEST(ParticipationMechanism, NotIntraRound) {
  ParticipationMechanism m(rule());
  EXPECT_FALSE(m.updates_within_round());
}

}  // namespace
}  // namespace mcs::incentive
