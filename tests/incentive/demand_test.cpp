#include "incentive/demand.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "incentive/demand_level.h"

namespace mcs::incentive {
namespace {

constexpr double kLn2 = 0.6931471805599453;

TEST(DeadlineFactor, MatchesEq3) {
  // X1 = lambda1 * ln(1 + 1/(tau - (k-1)))
  EXPECT_DOUBLE_EQ(deadline_factor(10, 1, 1.0), std::log(1.0 + 1.0 / 10.0));
  EXPECT_DOUBLE_EQ(deadline_factor(10, 5, 1.0), std::log(1.0 + 1.0 / 6.0));
  EXPECT_DOUBLE_EQ(deadline_factor(10, 10, 1.0), kLn2);  // final round
}

TEST(DeadlineFactor, MonotoneIncreasingInRound) {
  double prev = 0.0;
  for (Round k = 1; k <= 10; ++k) {
    const double x = deadline_factor(10, k, 1.0);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(DeadlineFactor, GrowthRateAccelerates) {
  // The paper: the growth rate itself increases approaching the deadline.
  double prev_delta = 0.0;
  for (Round k = 2; k <= 10; ++k) {
    const double delta =
        deadline_factor(10, k, 1.0) - deadline_factor(10, k - 1, 1.0);
    EXPECT_GT(delta, prev_delta);
    prev_delta = delta;
  }
}

TEST(DeadlineFactor, BoundedByLambdaLn2) {
  for (Round tau = 1; tau <= 30; ++tau) {
    for (Round k = 1; k <= tau; ++k) {
      const double x = deadline_factor(tau, k, 2.5);
      EXPECT_GT(x, 0.0);
      EXPECT_LE(x, 2.5 * kLn2 + 1e-12);
    }
  }
}

TEST(DeadlineFactor, ExpiredTaskHasZeroDemand) {
  EXPECT_DOUBLE_EQ(deadline_factor(5, 6, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_factor(5, 100, 1.0), 0.0);
}

TEST(DeadlineFactor, RejectsNonPositiveRound) {
  EXPECT_THROW(deadline_factor(5, 0, 1.0), Error);
}

TEST(ProgressFactor, MatchesEq4) {
  // X2 = lambda2 * ln(1 + (1 - pi/phi))
  EXPECT_DOUBLE_EQ(progress_factor(0, 20, 1.0), kLn2);
  EXPECT_DOUBLE_EQ(progress_factor(10, 20, 1.0), std::log(1.5));
  EXPECT_DOUBLE_EQ(progress_factor(20, 20, 1.0), 0.0);
}

TEST(ProgressFactor, MonotoneDecreasingInProgress) {
  double prev = 1e9;
  for (int received = 0; received <= 20; ++received) {
    const double x = progress_factor(received, 20, 1.0);
    EXPECT_LT(x, prev);
    prev = x;
  }
}

TEST(ProgressFactor, ReductionRateAccelerates) {
  // |d X2 / d progress| grows as progress -> 1 (concavity of ln).
  double prev_drop = 0.0;
  for (int received = 1; received <= 20; ++received) {
    const double drop = progress_factor(received - 1, 20, 1.0) -
                        progress_factor(received, 20, 1.0);
    EXPECT_GT(drop, prev_drop);
    prev_drop = drop;
  }
}

TEST(ProgressFactor, OverfilledTaskClampsToZero) {
  EXPECT_DOUBLE_EQ(progress_factor(25, 20, 1.0), 0.0);
}

TEST(ProgressFactor, Validation) {
  EXPECT_THROW(progress_factor(0, 0, 1.0), Error);
  EXPECT_THROW(progress_factor(-1, 5, 1.0), Error);
}

TEST(NeighborFactor, MatchesEq5) {
  // X3 = lambda3 * ln(1 + (1 - N/Nmax))
  EXPECT_DOUBLE_EQ(neighbor_factor(0, 10, 1.0), kLn2);
  EXPECT_DOUBLE_EQ(neighbor_factor(5, 10, 1.0), std::log(1.5));
  EXPECT_DOUBLE_EQ(neighbor_factor(10, 10, 1.0), 0.0);
}

TEST(NeighborFactor, MonotoneDecreasingInNeighbors) {
  double prev = 1e9;
  for (int n = 0; n <= 10; ++n) {
    const double x = neighbor_factor(n, 10, 1.0);
    EXPECT_LT(x, prev);
    prev = x;
  }
}

TEST(NeighborFactor, AllTasksStarvedWhenNoUsersAnywhere) {
  EXPECT_DOUBLE_EQ(neighbor_factor(0, 0, 1.0), kLn2);
}

TEST(NeighborFactor, Validation) {
  EXPECT_THROW(neighbor_factor(-1, 5, 1.0), Error);
  EXPECT_THROW(neighbor_factor(6, 5, 1.0), Error);
}

TEST(DemandParams, LambdaMax) {
  EXPECT_DOUBLE_EQ((DemandParams{1.0, 2.0, 0.5}).lambda_max(), 2.0);
  EXPECT_DOUBLE_EQ((DemandParams{}).lambda_max(), 1.0);
}

class DemandIndicatorTest : public ::testing::Test {
 protected:
  DemandIndicatorTest()
      : indicator_(DemandIndicator::with_paper_defaults()),
        world_(geo::BoundingBox::square(3000.0), geo::TravelModel{}, 500.0) {}

  DemandIndicator indicator_;
  model::World world_;
};

TEST_F(DemandIndicatorTest, PaperWeights) {
  ASSERT_EQ(indicator_.weights().size(), 3u);
  EXPECT_NEAR(indicator_.weights()[0], 0.648, 0.001);
  EXPECT_NEAR(indicator_.weights()[1], 0.230, 0.001);
  EXPECT_NEAR(indicator_.weights()[2], 0.122, 0.001);
}

TEST_F(DemandIndicatorTest, DemandIsWeightedSum) {
  world_.add_task({100, 100}, 10, 20);
  const model::Task& t = world_.task(0);
  const double d = indicator_.demand(t, 3, 2, 8);
  const auto& w = indicator_.weights();
  const double expected = w[0] * deadline_factor(10, 3, 1.0) +
                          w[1] * progress_factor(0, 20, 1.0) +
                          w[2] * neighbor_factor(2, 8, 1.0);
  EXPECT_DOUBLE_EQ(d, expected);
}

TEST_F(DemandIndicatorTest, CompletedAndExpiredTasksHaveZeroDemand) {
  world_.add_task({0, 0}, 2, 1);
  world_.task(0).add_measurement(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(indicator_.demand(world_.task(0), 2, 0, 5), 0.0);

  world_.add_task({0, 0}, 2, 1);
  EXPECT_DOUBLE_EQ(indicator_.demand(world_.task(1), 3, 0, 5), 0.0);
}

TEST_F(DemandIndicatorTest, NormalizationBoundsRespected) {
  world_.add_task({0, 0}, 1, 20);  // final round, zero progress -> max demand
  // Nmax=0 (no users): neighbor factor also at max -> total = lambda_max ln2.
  const double d = indicator_.demand(world_.task(0), 1, 0, 0);
  EXPECT_NEAR(indicator_.normalize(d), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(indicator_.normalize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(indicator_.normalize(-1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(indicator_.normalize(100.0), 1.0);  // clamped
}

TEST_F(DemandIndicatorTest, WorldDemandsVectorised) {
  world_.add_task({0, 0}, 10, 20);
  world_.add_task({3000, 3000}, 10, 20);
  world_.add_user({10, 10}, 600.0);  // neighbor of task 0 only
  const auto demands = indicator_.demands(world_, 1);
  ASSERT_EQ(demands.size(), 2u);
  // Task 1 has fewer neighbors -> strictly higher demand.
  EXPECT_GT(demands[1], demands[0]);
  const auto normalized = indicator_.normalized_demands(world_, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(normalized[i], 0.0);
    EXPECT_LE(normalized[i], 1.0);
    EXPECT_NEAR(normalized[i], indicator_.normalize(demands[i]), 1e-15);
  }
}

TEST_F(DemandIndicatorTest, PrecomputedNeighborCountsMatchRecount) {
  world_.add_task({0, 0}, 10, 20);
  world_.add_task({3000, 3000}, 10, 20);
  world_.add_user({10, 10}, 600.0);
  const std::vector<int> counts = world_.neighbor_counts();
  const auto recounted = indicator_.demands(world_, 1);
  const auto precomputed = indicator_.demands(world_, 1, counts);
  ASSERT_EQ(recounted.size(), precomputed.size());
  for (std::size_t i = 0; i < recounted.size(); ++i) {
    EXPECT_EQ(recounted[i], precomputed[i]);  // bit-identical, same code path
  }
  // Wrong-sized count vectors are a caller bug, not silently truncated.
  EXPECT_THROW(indicator_.demands(world_, 1, {1}), Error);
}

TEST_F(DemandIndicatorTest, LostProgressKeepsDemandInflated) {
  // The fault layer's degradation story in one assertion: a measurement
  // that never reaches the platform (lost upload -> no add_measurement)
  // leaves demand exactly where it was, while a delivered one deflates it.
  world_.add_task({0, 0}, 10, 5);
  const double before = indicator_.demand(world_.task(0), 2, 0, 0);
  // Lost upload: nothing recorded, demand recomputes unchanged.
  EXPECT_DOUBLE_EQ(indicator_.demand(world_.task(0), 2, 0, 0), before);
  // Delivered upload: progress advances, demand strictly drops.
  world_.task(0).add_measurement(0, 1, 0.5);
  EXPECT_LT(indicator_.demand(world_.task(0), 2, 0, 0), before);
}

TEST(DemandIndicator, CustomMatrixWeightsAreUsed) {
  // All-equal criteria -> weights 1/3 each.
  const DemandIndicator ind(DemandParams{}, ahp::ComparisonMatrix(3));
  for (const double w : ind.weights()) EXPECT_NEAR(w, 1.0 / 3.0, 1e-12);
}

TEST(DemandIndicator, ExplicitWeightsBypassAhp) {
  const DemandIndicator deadline_only(DemandParams{}, {1.0, 0.0, 0.0});
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_task({0, 0}, 10, 20);
  // Only X1 contributes: demand equals the bare deadline factor.
  EXPECT_DOUBLE_EQ(deadline_only.demand(w.task(0), 4, 0, 5),
                   deadline_factor(10, 4, 1.0));
}

TEST(DemandIndicator, ExplicitWeightValidation) {
  EXPECT_THROW(DemandIndicator(DemandParams{}, {0.5, 0.5}), Error);
  EXPECT_THROW(DemandIndicator(DemandParams{}, {0.5, 0.6, 0.1}), Error);
  EXPECT_THROW(DemandIndicator(DemandParams{}, {1.5, -0.5, 0.0}), Error);
  EXPECT_NO_THROW(DemandIndicator(DemandParams{}, {0.2, 0.3, 0.5}));
}

TEST(DemandIndicator, RejectsBadConstruction) {
  EXPECT_THROW(DemandIndicator(DemandParams{0.0, 1.0, 1.0},
                               ahp::ComparisonMatrix(3)),
               Error);
  EXPECT_THROW(DemandIndicator(DemandParams{}, ahp::ComparisonMatrix(4)),
               Error);
}

// Property sweep: for every (tau, k, pi, Ni) grid point, demand is within
// [0, lambda_max ln 2] and normalized demand within [0,1].
class DemandBoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(DemandBoundsProperty, AlwaysInRange) {
  const int tau = GetParam();
  const auto indicator = DemandIndicator::with_paper_defaults();
  model::World world(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  world.add_task({0, 0}, tau, 10);
  model::Task& t = world.task(0);
  int next_user = 0;
  for (int pi = 0; pi <= 10; ++pi) {
    if (pi > 0) t.add_measurement(next_user++, 1, 0.5);
    for (Round k = 1; k <= tau; ++k) {
      for (int ni = 0; ni <= 5; ++ni) {
        const double d = indicator.demand(t, k, ni, 5);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, std::log(2.0) + 1e-12);
        const double norm = indicator.normalize(d);
        EXPECT_GE(norm, 0.0);
        EXPECT_LE(norm, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deadlines, DemandBoundsProperty,
                         ::testing::Values(1, 2, 5, 15, 40));

// demands_into sweeps the raw store columns; it must equal the per-task
// demand() view path bit for bit across progress states (fresh, partial,
// completed, overfilled) and rounds (live, final, expired).
TEST(DemandIndicator, ColumnSweepMatchesPerTaskDemandBitExact) {
  const auto indicator = DemandIndicator::with_paper_defaults();
  model::World world(geo::BoundingBox::square(1000.0), geo::TravelModel{},
                     100.0);
  world.add_task({100, 100}, /*deadline=*/3, /*required=*/4);   // fresh
  world.add_task({200, 200}, 8, 3);                             // partial
  world.add_task({300, 300}, 8, 2);                             // completed
  world.add_task({400, 400}, 2, 1);                             // expires early
  world.add_task({500, 500}, 8, 2);                             // overfilled
  world.task(1).add_measurement(0, 1, 0.5);
  world.task(2).add_measurement(0, 1, 0.5);
  world.tasks()[2].add_measurement(1, 1, 0.5);
  for (int i = 0; i < 3; ++i) world.tasks()[4].add_measurement(i, 1, 0.5);
  const std::vector<int> counts = {0, 1, 2, 3, 1};
  for (const Round k : {1, 2, 3, 8}) {
    std::vector<double> swept;
    indicator.demands_into(world, k, counts, swept);
    ASSERT_EQ(swept.size(), world.num_tasks());
    for (std::size_t i = 0; i < world.num_tasks(); ++i) {
      EXPECT_EQ(swept[i], indicator.demand(world.tasks()[i], k, counts[i], 3))
          << "task " << i << " round " << k;
    }
  }
}

// The cached running max: demands(world, k) now reads Nmax from the
// neighbor cache's histogram instead of scanning the counts. Regression —
// it must equal the scan-based overload exactly, before and after user
// movement shifts the counts.
TEST(DemandIndicator, CachedRunningMaxMatchesCountScan) {
  const auto indicator = DemandIndicator::with_paper_defaults();
  model::World world(geo::BoundingBox::square(3000.0), geo::TravelModel{},
                     500.0);
  world.add_task({300, 300}, /*deadline=*/8, /*required=*/4);
  world.add_task({900, 300}, 8, 4);
  world.add_task({1500, 300}, 8, 4);
  world.add_user({300, 320}, 600.0);
  world.add_user({300, 280}, 600.0);
  world.add_user({900, 320}, 600.0);

  EXPECT_EQ(indicator.demands(world, 1),
            indicator.demands(world, 1, world.neighbor_counts()));

  // Move a user between discs: counts change, the histogram max follows.
  world.users()[2].set_location({1500.0, 320.0});
  EXPECT_EQ(indicator.demands(world, 2),
            indicator.demands(world, 2, world.neighbor_counts()));
}

// normalized_demands_into is a fused single pass; it must equal the
// two-pass demands_into + normalize loop bit for bit.
TEST(DemandIndicator, FusedNormalizeMatchesTwoPassBitExact) {
  const auto indicator = DemandIndicator::with_paper_defaults();
  model::World world(geo::BoundingBox::square(1000.0), geo::TravelModel{},
                     100.0);
  world.add_task({100, 100}, /*deadline=*/6, /*required=*/4);
  world.add_task({200, 200}, 8, 3);
  world.add_task({300, 300}, 2, 2);
  world.task(1).add_measurement(0, 1, 0.5);
  const std::vector<int> counts = {0, 2, 1};
  for (const Round k : {1, 2, 3}) {
    std::vector<double> two_pass;
    indicator.demands_into(world, k, counts, two_pass);
    for (double& d : two_pass) d = indicator.normalize(d);
    std::vector<double> fused;
    indicator.normalized_demands_into(world, k, counts, fused);
    EXPECT_EQ(fused, two_pass) << "round " << k;
  }
}

// The sharded sweeps (demands_into / normalized_demands_into / levels_into)
// must be bit-identical to the serial path at any worker count, both when
// Nmax is supplied and when the kScanForMax reduction derives it.
TEST(DemandIndicator, ShardedSweepsBitIdenticalAtAnyWorkerCount) {
  const auto indicator = DemandIndicator::with_paper_defaults();
  const DemandLevelScale scale(5);
  model::World world(geo::BoundingBox::square(5000.0), geo::TravelModel{},
                     100.0);
  std::vector<int> counts;
  for (int i = 0; i < 57; ++i) {  // odd count: uneven range boundaries
    world.add_task({100.0 + 50.0 * i, 200.0}, /*deadline=*/8,
                   /*required=*/3 + (i % 4));
    if (i % 3 == 0) world.task(i).add_measurement(0, 1, 0.5);
    counts.push_back(i % 7);
  }
  std::vector<double> serial_d;
  indicator.demands_into(world, 2, counts, DemandIndicator::kScanForMax,
                         serial_d);
  std::vector<double> serial_nd;
  indicator.normalized_demands_into(world, 2, counts, /*max_neighbors=*/6,
                                    serial_nd);
  std::vector<int> serial_lv;
  scale.levels_into(serial_nd, serial_lv);

  for (const int workers : {2, 8}) {
    SCOPED_TRACE(workers);
    ThreadPool pool(workers);
    std::vector<double> d;
    indicator.demands_into(world, 2, counts, DemandIndicator::kScanForMax, d,
                           &pool, workers);
    EXPECT_EQ(d, serial_d);
    std::vector<double> nd;
    indicator.normalized_demands_into(world, 2, counts, /*max_neighbors=*/6,
                                      nd, &pool, workers);
    EXPECT_EQ(nd, serial_nd);
    std::vector<int> lv;
    scale.levels_into(nd, lv, &pool, workers);
    EXPECT_EQ(lv, serial_lv);
  }
}

}  // namespace
}  // namespace mcs::incentive
