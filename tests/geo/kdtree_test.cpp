#include "geo/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "geo/distance.h"

namespace mcs::geo {
namespace {

TEST(KdTree, EmptyTree) {
  const KdTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.count_radius({0, 0}, 10.0), 0u);
  EXPECT_TRUE(t.query_radius({0, 0}, 10.0).empty());
  EXPECT_TRUE(t.nearest({0, 0}, 3).empty());
}

TEST(KdTree, SinglePoint) {
  const KdTree t(std::vector<KdTree::Item>{{7, {5, 5}}});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.count_radius({5, 5}, 0.0), 1u);
  EXPECT_EQ(t.nearest({0, 0}), (std::vector<std::int32_t>{7}));
}

TEST(KdTree, RadiusBoundaryInclusive) {
  const KdTree t(std::vector<KdTree::Item>{{1, {0, 0}}});
  EXPECT_EQ(t.count_radius({3, 4}, 5.0), 1u);
  EXPECT_EQ(t.count_radius({3, 4}, 4.999), 0u);
}

TEST(KdTree, NearestOrdering) {
  const KdTree t({{0, {0, 0}}, {1, {10, 0}}, {2, {20, 0}}, {3, {30, 0}}});
  EXPECT_EQ(t.nearest({11, 0}, 3),
            (std::vector<std::int32_t>{1, 2, 0}));
  // k larger than the tree returns everything, closest first.
  EXPECT_EQ(t.nearest({-1, 0}, 10),
            (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_THROW(t.nearest({0, 0}, 0), Error);
}

TEST(KdTree, DuplicatePointsAllReturned) {
  const KdTree t({{1, {5, 5}}, {2, {5, 5}}, {3, {5, 5}}});
  EXPECT_EQ(t.count_radius({5, 5}, 0.0), 3u);
  EXPECT_EQ(t.nearest({5, 5}, 3).size(), 3u);
}

// Property sweep against brute force, for uniform and clustered data.
class KdTreeProperty : public ::testing::TestWithParam<bool> {};

TEST_P(KdTreeProperty, MatchesBruteForce) {
  const bool clustered = GetParam();
  Rng rng(clustered ? 101 : 102);
  std::vector<KdTree::Item> items;
  for (int i = 0; i < 400; ++i) {
    Point p;
    if (clustered && i % 2 == 0) {
      p = {500.0 + rng.normal(0.0, 30.0), 500.0 + rng.normal(0.0, 30.0)};
    } else {
      p = {rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    }
    items.push_back({i, p});
  }
  const KdTree tree(items);
  ASSERT_EQ(tree.size(), 400u);

  for (int q = 0; q < 50; ++q) {
    const Point center{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const double radius = rng.uniform(0.0, 300.0);

    std::vector<std::int32_t> brute;
    for (const auto& it : items) {
      if (euclidean(center, it.p) <= radius) brute.push_back(it.id);
    }
    auto got = tree.query_radius(center, radius);
    std::sort(got.begin(), got.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(got, brute);
    EXPECT_EQ(tree.count_radius(center, radius), brute.size());

    // k-NN vs brute force (distances, to be robust to ties).
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    std::vector<double> all_d;
    for (const auto& it : items) all_d.push_back(euclidean(center, it.p));
    std::sort(all_d.begin(), all_d.end());
    const auto knn = tree.nearest(center, k);
    ASSERT_EQ(knn.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      const Point p = items[static_cast<std::size_t>(knn[i])].p;
      EXPECT_NEAR(euclidean(center, p), all_d[i], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, KdTreeProperty, ::testing::Bool());

}  // namespace
}  // namespace mcs::geo
