#include "geo/point.h"

#include <gtest/gtest.h>

namespace mcs::geo {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
}

TEST(Point, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm({0, 0}), 0.0);
}

TEST(Point, Lerp) {
  const Point a{0, 0};
  const Point b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point{5, 10}));
}

TEST(Point, Equality) {
  EXPECT_TRUE((Point{1, 2}) == (Point{1, 2}));
  EXPECT_TRUE((Point{1, 2}) != (Point{1, 3}));
}

}  // namespace
}  // namespace mcs::geo
