#include "geo/path.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::geo {
namespace {

TEST(PathLength, Basics) {
  EXPECT_DOUBLE_EQ(path_length({}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}, {3, 4}}), 5.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}, {3, 4}, {3, 0}}), 9.0);
}

TEST(PathLength, ManhattanMetric) {
  EXPECT_DOUBLE_EQ(path_length({{0, 0}, {3, 4}}, Metric::kManhattan), 7.0);
}

TEST(TravelModel, PaperDefaults) {
  const TravelModel t;
  EXPECT_DOUBLE_EQ(t.speed_mps, 2.0);
  EXPECT_DOUBLE_EQ(t.cost_per_meter, 0.002);
  EXPECT_DOUBLE_EQ(t.time_for(1000.0), 500.0);
  EXPECT_DOUBLE_EQ(t.cost_for(1000.0), 2.0);
  EXPECT_DOUBLE_EQ(t.distance_within(600.0), 1200.0);
}

TEST(TravelModel, TimeAndDistanceAreInverses) {
  const TravelModel t{1.5, 0.01};
  EXPECT_DOUBLE_EQ(t.distance_within(t.time_for(123.0)), 123.0);
}

TEST(PointAlong, WalksTheSegments) {
  const std::vector<Point> path{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(point_along(path, 0.0), (Point{0, 0}));
  EXPECT_EQ(point_along(path, 5.0), (Point{5, 0}));
  EXPECT_EQ(point_along(path, 10.0), (Point{10, 0}));
  EXPECT_EQ(point_along(path, 15.0), (Point{10, 5}));
  EXPECT_EQ(point_along(path, 20.0), (Point{10, 10}));
  EXPECT_EQ(point_along(path, 999.0), (Point{10, 10}));  // clamps to end
}

TEST(PointAlong, DegenerateSegments) {
  const std::vector<Point> path{{5, 5}, {5, 5}, {6, 5}};
  EXPECT_EQ(point_along(path, 0.5), (Point{5.5, 5}));
}

TEST(PointAlong, Errors) {
  EXPECT_THROW(point_along({}, 1.0), Error);
  EXPECT_THROW(point_along({{0, 0}}, -1.0), Error);
}

}  // namespace
}  // namespace mcs::geo
