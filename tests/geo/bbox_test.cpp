#include "geo/bbox.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::geo {
namespace {

TEST(BoundingBox, SquareFactory) {
  const auto b = BoundingBox::square(3000.0);
  EXPECT_DOUBLE_EQ(b.width(), 3000.0);
  EXPECT_DOUBLE_EQ(b.height(), 3000.0);
  EXPECT_DOUBLE_EQ(b.area(), 9.0e6);
  EXPECT_THROW(BoundingBox::square(0.0), Error);
  EXPECT_THROW(BoundingBox::square(-1.0), Error);
}

TEST(BoundingBox, Contains) {
  const BoundingBox b({0, 0}, {10, 10});
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_FALSE(b.contains({-0.1, 5}));
  EXPECT_FALSE(b.contains({5, 10.1}));
}

TEST(BoundingBox, Clamp) {
  const BoundingBox b({0, 0}, {10, 10});
  EXPECT_EQ(b.clamp({-5, 3}), (Point{0, 3}));
  EXPECT_EQ(b.clamp({20, 30}), (Point{10, 10}));
  EXPECT_EQ(b.clamp({4, 4}), (Point{4, 4}));
}

TEST(BoundingBox, Diameter) {
  const BoundingBox b({0, 0}, {3, 4});
  EXPECT_DOUBLE_EQ(b.diameter(), 5.0);
}

TEST(BoundingBox, InvertedCornersThrow) {
  EXPECT_THROW(BoundingBox({1, 0}, {0, 1}), Error);
  EXPECT_THROW(BoundingBox({0, 1}, {1, 0}), Error);
}

}  // namespace
}  // namespace mcs::geo
