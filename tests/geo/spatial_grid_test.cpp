#include "geo/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "geo/distance.h"

namespace mcs::geo {
namespace {

TEST(SpatialGrid, InsertAndCount) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  g.insert(1, {10, 10});
  g.insert(2, {12, 10});
  g.insert(3, {90, 90});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.count_radius({10, 10}, 5.0), 2u);
  EXPECT_EQ(g.count_radius({10, 10}, 0.5), 1u);
  EXPECT_EQ(g.count_radius({50, 50}, 1.0), 0u);
  EXPECT_EQ(g.count_radius({0, 0}, 1000.0), 3u);
}

TEST(SpatialGrid, QueryRadiusReturnsIds) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  g.insert(7, {50, 50});
  g.insert(8, {52, 50});
  g.insert(9, {70, 70});
  auto ids = g.query_radius({51, 50}, 2.0);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::int32_t>{7, 8}));
}

TEST(SpatialGrid, RadiusBoundaryIsInclusive) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  g.insert(1, {0, 0});
  EXPECT_EQ(g.count_radius({3, 4}, 5.0), 1u);       // exactly on the circle
  EXPECT_EQ(g.count_radius({3, 4}, 4.9999), 0u);
}

TEST(SpatialGrid, RemoveSpecificPoint) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  g.insert(1, {5, 5});
  g.insert(1, {20, 20});  // same id, different point
  EXPECT_TRUE(g.remove(1, {5, 5}));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.count_radius({5, 5}, 1.0), 0u);
  EXPECT_EQ(g.count_radius({20, 20}, 1.0), 1u);
  EXPECT_FALSE(g.remove(1, {5, 5}));  // already gone
}

TEST(SpatialGrid, ClearEmptiesEverything) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  g.insert(1, {5, 5});
  g.insert(2, {50, 50});
  g.clear();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.count_radius({5, 5}, 100.0), 0u);
}

TEST(SpatialGrid, PointsOutsideBoundsStillQueryable) {
  SpatialGrid g(BoundingBox::square(10.0), 2.0);
  g.insert(1, {100, 100});  // far outside; clamped into a border cell
  EXPECT_EQ(g.count_radius({100, 100}, 1.0), 1u);
  EXPECT_EQ(g.count_radius({5, 5}, 1.0), 0u);
}

TEST(SpatialGrid, NearestBasics) {
  SpatialGrid g(BoundingBox::square(100.0), 10.0);
  EXPECT_EQ(g.nearest({5, 5}), -1);
  g.insert(1, {10, 10});
  g.insert(2, {80, 80});
  double d = 0.0;
  EXPECT_EQ(g.nearest({12, 10}, &d), 1);
  EXPECT_DOUBLE_EQ(d, 2.0);
  EXPECT_EQ(g.nearest({79, 79}), 2);
}

TEST(SpatialGrid, NegativeRadiusThrows) {
  SpatialGrid g(BoundingBox::square(10.0), 1.0);
  EXPECT_THROW(g.count_radius({0, 0}, -1.0), Error);
  EXPECT_THROW(g.query_radius({0, 0}, -1.0), Error);
}

TEST(SpatialGrid, BadCellSizeThrows) {
  EXPECT_THROW(SpatialGrid(BoundingBox::square(10.0), 0.0), Error);
}

// Property sweep: grid results must equal brute force for random point sets
// and random queries, across several cell sizes.
class SpatialGridProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
  const double cell = GetParam();
  Rng rng(static_cast<std::uint64_t>(cell * 1000) + 5);
  const BoundingBox area = BoundingBox::square(1000.0);
  SpatialGrid grid(area, cell);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    const Point p{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    grid.insert(i, p);
    pts.push_back(p);
  }
  for (int q = 0; q < 50; ++q) {
    const Point center{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const double radius = rng.uniform(0.0, 400.0);
    std::size_t brute = 0;
    double best = 1e18;
    std::int32_t best_id = -1;
    for (int i = 0; i < 300; ++i) {
      const double d = euclidean(center, pts[static_cast<std::size_t>(i)]);
      if (d <= radius) ++brute;
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    EXPECT_EQ(grid.count_radius(center, radius), brute);
    EXPECT_EQ(grid.query_radius(center, radius).size(), brute);
    double nearest_d = 0.0;
    EXPECT_EQ(grid.nearest(center, &nearest_d), best_id);
    EXPECT_NEAR(nearest_d, best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, SpatialGridProperty,
                         ::testing::Values(25.0, 100.0, 500.0, 2000.0));

}  // namespace
}  // namespace mcs::geo
