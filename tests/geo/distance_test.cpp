#include "geo/distance.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace mcs::geo {
namespace {

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(squared_euclidean({0, 0}, {3, 4}), 25.0);
}

TEST(Distance, Manhattan) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {1, 1}), 4.0);
}

TEST(Distance, HaversineKnownPairs) {
  // Paris (2.3522 E, 48.8566 N) to London (-0.1276 E, 51.5072 N): ~344 km.
  const double d = haversine({2.3522, 48.8566}, {-0.1276, 51.5072});
  EXPECT_NEAR(d, 344000.0, 4000.0);
  // Same point: zero.
  EXPECT_DOUBLE_EQ(haversine({10, 20}, {10, 20}), 0.0);
  // One degree of latitude: ~111.2 km.
  EXPECT_NEAR(haversine({0, 0}, {0, 1}), 111200.0, 500.0);
}

TEST(Distance, MetricProperties) {
  // Symmetry + triangle inequality on random triples (Euclidean and
  // Manhattan).
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point b{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    const Point c{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    for (const Metric m : {Metric::kEuclidean, Metric::kManhattan}) {
      EXPECT_DOUBLE_EQ(distance(a, b, m), distance(b, a, m));
      EXPECT_LE(distance(a, c, m), distance(a, b, m) + distance(b, c, m) + 1e-9);
      EXPECT_GE(distance(a, b, m), 0.0);
    }
  }
}

TEST(Distance, EuclideanNeverExceedsManhattan) {
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Point b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_LE(euclidean(a, b), manhattan(a, b) + 1e-12);
  }
}

TEST(Distance, ParseAndName) {
  EXPECT_EQ(parse_metric("euclidean"), Metric::kEuclidean);
  EXPECT_EQ(parse_metric("L2"), Metric::kEuclidean);
  EXPECT_EQ(parse_metric("manhattan"), Metric::kManhattan);
  EXPECT_EQ(parse_metric("l1"), Metric::kManhattan);
  EXPECT_EQ(parse_metric("haversine"), Metric::kHaversine);
  EXPECT_THROW(parse_metric("chebyshev"), Error);
  EXPECT_STREQ(metric_name(Metric::kEuclidean), "euclidean");
  EXPECT_STREQ(metric_name(Metric::kManhattan), "manhattan");
  EXPECT_STREQ(metric_name(Metric::kHaversine), "haversine");
}

}  // namespace
}  // namespace mcs::geo
