#include "sat/reverse_auction.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mcs::sat {
namespace {

TEST(ReverseAuction, LowestBidsWinUniformSecondPrice) {
  const auto awards = run_reverse_auction(
      {{0, 1.0}, {1, 0.5}, {2, 2.0}, {3, 1.5}}, /*slots=*/2, /*reserve=*/5.0);
  ASSERT_EQ(awards.size(), 2u);
  EXPECT_EQ(awards[0].user, 1);
  EXPECT_EQ(awards[1].user, 0);
  // Clearing price = first rejected bid = 1.5, paid to every winner.
  EXPECT_DOUBLE_EQ(awards[0].payment, 1.5);
  EXPECT_DOUBLE_EQ(awards[1].payment, 1.5);
}

TEST(ReverseAuction, UncontestedPaysReserve) {
  const auto awards =
      run_reverse_auction({{0, 1.0}, {1, 2.0}}, /*slots=*/3, /*reserve=*/4.0);
  ASSERT_EQ(awards.size(), 2u);
  EXPECT_DOUBLE_EQ(awards[0].payment, 4.0);
  EXPECT_DOUBLE_EQ(awards[1].payment, 4.0);
}

TEST(ReverseAuction, ReserveFiltersBids) {
  const auto awards =
      run_reverse_auction({{0, 10.0}, {1, 1.0}}, /*slots=*/2, /*reserve=*/5.0);
  ASSERT_EQ(awards.size(), 1u);
  EXPECT_EQ(awards[0].user, 1);
  EXPECT_DOUBLE_EQ(awards[0].payment, 5.0);  // uncontested after filtering
}

TEST(ReverseAuction, EmptyAndNoEligibleBids) {
  EXPECT_TRUE(run_reverse_auction({}, 2, 1.0).empty());
  EXPECT_TRUE(run_reverse_auction({{0, 3.0}}, 2, 1.0).empty());
}

TEST(ReverseAuction, PaymentNeverBelowBid) {
  // Individual rationality: winners are paid >= their own bid.
  const auto awards = run_reverse_auction(
      {{0, 0.2}, {1, 0.4}, {2, 0.9}, {3, 1.4}}, /*slots=*/3, /*reserve=*/2.0);
  ASSERT_EQ(awards.size(), 3u);
  for (const auto& a : awards) EXPECT_GE(a.payment, 0.9);
  EXPECT_DOUBLE_EQ(awards[0].payment, 1.4);
}

TEST(ReverseAuction, DeterministicTieBreakByUserId) {
  const auto awards = run_reverse_auction(
      {{5, 1.0}, {2, 1.0}, {9, 1.0}}, /*slots=*/2, /*reserve=*/3.0);
  ASSERT_EQ(awards.size(), 2u);
  EXPECT_EQ(awards[0].user, 2);
  EXPECT_EQ(awards[1].user, 5);
  EXPECT_DOUBLE_EQ(awards[0].payment, 1.0);  // first rejected bid ties at 1.0
}

TEST(ReverseAuction, Validation) {
  EXPECT_THROW(run_reverse_auction({{0, 1.0}}, 0, 1.0), Error);
  EXPECT_THROW(run_reverse_auction({{0, -1.0}}, 1, 1.0), Error);
  EXPECT_THROW(run_reverse_auction({{-1, 1.0}}, 1, 1.0), Error);
  EXPECT_THROW(run_reverse_auction({{0, 1.0}}, 1, -1.0), Error);
}

TEST(ReverseAuction, TruthfulnessSpotCheck) {
  // Misreporting cannot help: with true cost 1.0 and others at {0.5, 1.5},
  // slots=1: truthful loses to 0.5 (utility 0). Underbidding to 0.4 wins at
  // price 0.5 -> utility 0.5 - 1.0 < 0. Overbidding still loses. So
  // truthful reporting is (weakly) optimal here.
  const auto truthful = run_reverse_auction(
      {{0, 1.0}, {1, 0.5}, {2, 1.5}}, 1, 10.0);
  ASSERT_EQ(truthful.size(), 1u);
  EXPECT_EQ(truthful[0].user, 1);
  const auto shaded = run_reverse_auction(
      {{0, 0.4}, {1, 0.5}, {2, 1.5}}, 1, 10.0);
  ASSERT_EQ(shaded.size(), 1u);
  EXPECT_EQ(shaded[0].user, 0);
  EXPECT_DOUBLE_EQ(shaded[0].payment, 0.5);  // paid below true cost: a loss
}

}  // namespace
}  // namespace mcs::sat
