#include "sat/sat_round.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace mcs::sat {
namespace {

model::World line_world() {
  model::World w(geo::BoundingBox::square(1000.0), geo::TravelModel{}, 100.0);
  w.add_task({100, 0}, 5, 2);   // task 0
  w.add_task({900, 0}, 5, 2);   // task 1, far from most users
  w.add_user({0, 0}, 600.0);    // 1200 m reach
  w.add_user({150, 0}, 600.0);
  w.add_user({880, 0}, 600.0);
  return w;
}

TEST(SatRound, AssignsCheapestUsersAndRecordsMeasurements) {
  model::World w = line_world();
  const SatRoundResult r = run_sat_round(w, 1, {});
  // Task 0: users 0 (cost 0.2) and 1 (cost 0.1) win; user 2 also bids on
  // task 0? distance 780 m < 1200 -> bid 1.56, loses the 2 slots... slots
  // default 5 but open slots = required 2.
  EXPECT_EQ(w.task(0).received(), 2);
  EXPECT_TRUE(w.task(0).has_contributed(0));
  EXPECT_TRUE(w.task(0).has_contributed(1));
  // Task 1: all three can reach it; it needs 2.
  EXPECT_EQ(w.task(1).received(), 2);
  EXPECT_TRUE(w.task(1).has_contributed(2));
  EXPECT_GT(r.total_paid, 0.0);
  EXPECT_EQ(r.assignments.size(), 4u);
}

TEST(SatRound, PaymentsCoverUserCosts) {
  model::World w = line_world();
  run_sat_round(w, 1, {});
  for (const model::User& u : w.users()) {
    // Individual rationality holds for bids from the original location;
    // chained assignments only shorten legs (payments are fixed, the user
    // moves closer), so realized profit stays non-negative.
    EXPECT_GE(u.total_profit(), -1e-9);
  }
}

TEST(SatRound, RespectsDistinctUserRuleAcrossRounds) {
  model::World w = line_world();
  run_sat_round(w, 1, {});
  run_sat_round(w, 2, {});
  for (const model::Task& t : w.tasks()) {
    std::set<UserId> seen;
    for (const auto& m : t.measurements()) {
      EXPECT_TRUE(seen.insert(m.user).second);
    }
  }
}

TEST(SatRound, SlotLimitCapsAwards) {
  model::World w(geo::BoundingBox::square(100.0), geo::TravelModel{}, 10.0);
  w.add_task({50, 50}, 5, 10);
  for (int i = 0; i < 8; ++i) w.add_user({50, 50}, 600.0);
  SatRoundParams p;
  p.slots_per_task = 3;
  run_sat_round(w, 1, p);
  EXPECT_EQ(w.task(0).received(), 3);
}

TEST(SatRound, ReserveLimitsPayments) {
  model::World w = line_world();
  SatRoundParams p;
  p.reserve = 0.15;  // only very close users may serve
  const SatRoundResult r = run_sat_round(w, 1, p);
  for (const SatAssignment& a : r.assignments) {
    EXPECT_LE(a.payment, p.reserve + 1e-12);
  }
  // User 0 (bid 0.2 on task 0) is priced out.
  EXPECT_FALSE(w.task(0).has_contributed(0));
}

TEST(SatRound, BudgetDeclinesExpensiveAssignments) {
  model::World w(geo::BoundingBox::square(2000.0), geo::TravelModel{}, 10.0);
  // Two tasks on opposite sides of the user's home; each is reachable alone
  // (900 m < 1100 m budget) so both auctions award the user, but serving
  // both needs 900 + 1800 m -> the second assignment must be declined.
  w.add_task({100, 1000}, 5, 1);
  w.add_task({1900, 1000}, 5, 1);
  w.add_user({1000, 1000}, 550.0);  // 1100 m
  const SatRoundResult r = run_sat_round(w, 1, {});
  EXPECT_EQ(r.assignments.size(), 1u);
  EXPECT_EQ(r.declined, 1);
  EXPECT_EQ(w.task(0).received() + w.task(1).received(), 1);
}

TEST(SatRound, ExpiredAndCompletedTasksGetNoBids) {
  model::World w = line_world();
  for (int u = 0; u < 2; ++u) w.task(0).add_measurement(u, 1, 0.1);
  const SatRoundResult r = run_sat_round(w, 6, {});  // deadline 5 passed
  EXPECT_TRUE(r.assignments.empty());
  EXPECT_EQ(w.task(1).received(), 0);
}

TEST(SatRound, FullCampaignCompletesPaperScaleWorld) {
  sim::ScenarioParams params;
  params.num_users = 80;
  Rng rng(13);
  model::World w = sim::generate_world(params, rng);
  Money paid = 0.0;
  for (Round k = 1; k <= 15; ++k) paid += run_sat_round(w, k, {}).total_paid;
  // Central assignment with a generous reserve should do well.
  EXPECT_GT(sim::completeness_pct(w), 50.0);
  EXPECT_GT(paid, 0.0);
  // Payments bounded by reserve * measurements.
  EXPECT_LE(paid, 2.5 * static_cast<double>(w.total_received()) + 1e-9);
}

}  // namespace
}  // namespace mcs::sat
