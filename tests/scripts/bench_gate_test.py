#!/usr/bin/env python3
"""Unit tests for scripts/bench_gate.py: best-of-N repetition folding and
the regression comparison logic the bench gate rides on."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..",
                    "scripts"))

import bench_gate  # noqa: E402


def capture(entries):
    """A google-benchmark JSON doc from (name, run_type, fields) tuples."""
    benchmarks = []
    for name, run_type, fields in entries:
        b = {"name": name, "run_type": run_type}
        b.update(fields)
        benchmarks.append(b)
    return {"benchmarks": benchmarks}


def write_doc(doc):
    f = tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False)
    json.dump(doc, f)
    f.close()
    return f.name


class LoadBenchmarksTest(unittest.TestCase):
    def load(self, doc):
        path = write_doc(doc)
        try:
            return bench_gate.load_benchmarks(path)
        finally:
            os.unlink(path)

    def test_repetitions_keep_best_cpu_time(self):
        loaded = self.load(capture([
            ("BM_X/1", "iteration", {"cpu_time": 5.0}),
            ("BM_X/1", "iteration", {"cpu_time": 3.0}),
            ("BM_X/1", "iteration", {"cpu_time": 4.0}),
        ]))
        self.assertEqual(loaded["BM_X/1"]["cpu_time"], 3.0)

    def test_repetitions_keep_best_items_per_second(self):
        loaded = self.load(capture([
            ("BM_X/1", "iteration", {"items_per_second": 10.0,
                                     "cpu_time": 9.0}),
            ("BM_X/1", "iteration", {"items_per_second": 30.0,
                                     "cpu_time": 99.0}),
        ]))
        # Higher throughput wins even when its cpu_time is worse.
        self.assertEqual(loaded["BM_X/1"]["items_per_second"], 30.0)

    def test_aggregates_are_skipped(self):
        loaded = self.load(capture([
            ("BM_X/1", "iteration", {"cpu_time": 3.0}),
            ("BM_X/1_mean", "aggregate", {"cpu_time": 4.0}),
            ("BM_X/1_stddev", "aggregate", {"cpu_time": 1.0}),
        ]))
        self.assertEqual(sorted(loaded), ["BM_X/1"])

    def test_repeats_suffix_is_normalized_away(self):
        # A --benchmark_repetitions capture names entries with a
        # "/repeats:N" suffix; they must still fold against (and gate
        # against) a single-run baseline's plain names.
        loaded = self.load(capture([
            ("BM_X/1/repeats:3", "iteration", {"cpu_time": 5.0}),
            ("BM_X/1/repeats:3", "iteration", {"cpu_time": 3.0}),
            ("BM_X/1/repeats:3_mean", "aggregate", {"cpu_time": 4.0}),
        ]))
        self.assertEqual(sorted(loaded), ["BM_X/1"])
        self.assertEqual(loaded["BM_X/1"]["cpu_time"], 3.0)

    def test_merged_capture_unwraps_current(self):
        loaded = self.load({
            "current": capture([("BM_X/1", "iteration", {"cpu_time": 2.0})]),
            "baseline_pre_pr": {"ignored": True},
        })
        self.assertEqual(loaded["BM_X/1"]["cpu_time"], 2.0)


class CompareTest(unittest.TestCase):
    def test_regression_beyond_threshold_fails(self):
        fresh = {"BM_Campaign/1": {"items_per_second": 80.0}}
        base = {"BM_Campaign/1": {"items_per_second": 100.0}}
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 1)
        self.assertEqual(len(failures), 1)

    def test_regression_within_threshold_passes(self):
        fresh = {"BM_Campaign/1": {"items_per_second": 90.0}}
        base = {"BM_Campaign/1": {"items_per_second": 100.0}}
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 1)
        self.assertEqual(failures, [])

    def test_cpu_time_direction_lower_is_better(self):
        fresh = {"BM_Campaign/1": {"cpu_time": 130.0}}
        base = {"BM_Campaign/1": {"cpu_time": 100.0}}
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 1)
        self.assertEqual(len(failures), 1)
        fresh = {"BM_Campaign/1": {"cpu_time": 80.0}}  # faster: fine
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(failures, [])

    def test_series_regex_filters(self):
        fresh = {"BM_Other/1": {"cpu_time": 900.0}}
        base = {"BM_Other/1": {"cpu_time": 100.0}}
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 0)
        self.assertEqual(failures, [])

    def test_missing_baseline_series_is_skipped(self):
        fresh = {"BM_Campaign/new": {"cpu_time": 50.0}}
        checked, failures = bench_gate.compare(fresh, {}, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 0)
        self.assertEqual(failures, [])

    def test_best_of_n_masks_one_noisy_repetition(self):
        # One slow repetition out of three must not fail the gate: compare
        # sees only the folded best-of entries.
        fresh_doc = capture([
            ("BM_Campaign/1", "iteration", {"cpu_time": 101.0}),
            ("BM_Campaign/1", "iteration", {"cpu_time": 250.0}),  # noise
            ("BM_Campaign/1", "iteration", {"cpu_time": 99.0}),
        ])
        base_doc = capture([
            ("BM_Campaign/1", "iteration", {"cpu_time": 100.0}),
        ])
        fresh_path, base_path = write_doc(fresh_doc), write_doc(base_doc)
        try:
            fresh = bench_gate.load_benchmarks(fresh_path)
            base = bench_gate.load_benchmarks(base_path)
        finally:
            os.unlink(fresh_path)
            os.unlink(base_path)
        checked, failures = bench_gate.compare(fresh, base, 0.15,
                                               r"^BM_Campaign/")
        self.assertEqual(checked, 1)
        self.assertEqual(failures, [])


if __name__ == "__main__":
    unittest.main()
