// Quickstart: run one pay-on-demand crowdsensing campaign with the paper's
// default setup and print what happened round by round.
//
//   ./quickstart [--users=100] [--tasks=20] [--mechanism=on-demand]
//                [--selector=dp] [--seed=7] [--map] [--json=out.json] ...
//
// (all flags of the figure benches are accepted; see exp/figures.h)
#include <fstream>
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "exp/runner.h"
#include "sim/ascii_map.h"
#include "sim/serialize.h"
#include "sim/trace_analysis.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  const bool show_map = flags.get_bool("map", false);
  const std::string json_path = flags.get_string("json", "");
  exp::warn_unconsumed(flags);

  // Build one concrete campaign (world + mechanism + selector) by hand to
  // show the library's pieces; exp::run_repetition wraps exactly this.
  Rng rng(cfg.seed);
  model::World world = sim::generate_world(cfg.scenario, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mechanism = incentive::make_mechanism(cfg.mechanism, world,
                                             cfg.mech_params, mech_rng);
  auto selector = select::make_selector(cfg.selector, cfg.dp_candidate_cap);

  sim::SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sp.record_events = true;
  sim::Simulator simulator(std::move(world), std::move(mechanism),
                           std::move(selector), sp);

  exp::print_experiment_header(cfg, "quickstart campaign");

  TextTable table({"round", "new-meas", "total", "coverage%", "complete%",
                   "payout$", "active-users", "avg-profit$"});
  while (simulator.current_round() < cfg.max_rounds &&
         !simulator.all_tasks_closed()) {
    const sim::RoundMetrics& rm = simulator.step();
    table.add_row({std::to_string(rm.round), std::to_string(rm.new_measurements),
                   std::to_string(rm.total_measurements),
                   format_fixed(rm.coverage_pct, 1),
                   format_fixed(rm.completeness_pct, 1),
                   format_fixed(rm.payout, 2), std::to_string(rm.active_users),
                   format_fixed(rm.mean_user_profit, 3)});
  }
  table.print(std::cout);

  const sim::CampaignMetrics m = simulator.summary();
  std::cout << "\ncampaign summary (" << simulator.mechanism().name() << " / "
            << simulator.selector().name() << "):\n"
            << "  coverage              " << format_fixed(m.coverage_pct, 1)
            << " %\n"
            << "  overall completeness  " << format_fixed(m.completeness_pct, 1)
            << " %\n"
            << "  tasks completed       "
            << format_fixed(m.tasks_completed_pct, 1) << " %\n"
            << "  avg measurements/task " << format_fixed(m.avg_measurements, 2)
            << "\n"
            << "  measurement variance  "
            << format_fixed(m.measurement_variance, 2) << "\n"
            << "  total paid            $" << format_fixed(m.total_paid, 2)
            << " (budget $" << format_fixed(simulator.budget().total(), 2)
            << ", overdraft $" << format_fixed(m.budget_overdraft, 2) << ")\n"
            << "  reward / measurement  $"
            << format_fixed(m.avg_reward_per_measurement, 3) << "\n"
            << "  sensing events logged " << simulator.events().size() << "\n";

  const sim::TraceSummary trace =
      sim::summarize_trace(simulator.world(), simulator.events());
  std::cout << "  rounds to coverage    "
            << format_fixed(trace.mean_rounds_to_coverage, 2) << " (mean; "
            << trace.tasks_never_covered << " never covered)\n"
            << "  rounds to completion  "
            << format_fixed(trace.mean_rounds_to_completion, 2) << " (mean; "
            << trace.tasks_never_completed << " never completed)\n"
            << "  walking per sample    "
            << format_fixed(trace.mean_leg_distance, 1) << " m\n";

  if (show_map) {
    sim::AsciiMapOptions opt;
    opt.round = simulator.current_round();
    std::cout << "\n" << sim::render_ascii_map(simulator.world(), opt);
  }

  if (!json_path.empty()) {
    Json out = Json::object();
    out["world"] = sim::world_to_json(simulator.world());
    out["campaign"] = sim::campaign_to_json(m);
    out["rounds"] = sim::rounds_to_json(simulator.history());
    out["events"] = sim::events_to_json(simulator.events());
    std::ofstream file(json_path);
    if (!file.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    file << out.dump(2) << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
