// Air-quality monitoring campaign with staggered deadlines.
//
// An environmental agency needs PM2.5 readings at 30 stations: 10 urgent
// stations (deadline round 4, near a pollution incident), 20 routine ones
// (deadline round 12). The demand indicator's deadline factor should pull
// participants toward the urgent stations first; this example tracks when
// each group reaches its quota and prints a per-round timeline.
//
//   ./air_quality_campaign [--users=120] [--seed=11]
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace mcs;

constexpr Round kUrgentDeadline = 4;
constexpr Round kRoutineDeadline = 12;
constexpr int kUrgentStations = 10;
constexpr int kRoutineStations = 20;

model::World make_stations(const sim::ScenarioParams& p, Rng& rng) {
  geo::TravelModel travel;
  travel.speed_mps = p.speed_mps;
  travel.cost_per_meter = p.cost_per_meter;
  model::World world(geo::BoundingBox::square(p.area_side), travel,
                     p.neighbor_radius);
  // Urgent stations cluster around the incident site in the north-east.
  const geo::Point incident{2300.0, 2300.0};
  for (int i = 0; i < kUrgentStations; ++i) {
    world.add_task(world.area().clamp({incident.x + rng.normal(0.0, 350.0),
                                       incident.y + rng.normal(0.0, 350.0)}),
                   kUrgentDeadline, p.required_measurements);
  }
  for (int i = 0; i < kRoutineStations; ++i) {
    world.add_task({rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)},
                   kRoutineDeadline, p.required_measurements);
  }
  for (int i = 0; i < p.num_users; ++i) {
    world.add_user({rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)},
                   rng.uniform(p.user_budget_min_s, p.user_budget_max_s));
  }
  return world;
}

double group_completeness(const model::World& world, Round deadline) {
  long long req = 0, got = 0;
  for (const model::Task& t : world.tasks()) {
    if (t.deadline() != deadline) continue;
    req += t.required();
    got += std::min(t.received(), t.required());
  }
  return req ? 100.0 * static_cast<double>(got) / static_cast<double>(req)
             : 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  cfg.max_rounds = std::max(cfg.max_rounds, kRoutineDeadline);
  // 30 stations x 20 measurements: Eq. 9 needs B >= 600 * lambda*(N-1) for a
  // positive base reward, so this campaign defaults to a larger budget than
  // the paper's 20-task setup (override with --budget).
  if (!flags.has("budget")) cfg.mech_params.platform_budget = 1500.0;
  exp::warn_unconsumed(flags);

  std::cout << "Air-quality campaign: " << kUrgentStations
            << " urgent stations (deadline round " << kUrgentDeadline << "), "
            << kRoutineStations << " routine stations (deadline round "
            << kRoutineDeadline << "), " << cfg.scenario.num_users
            << " volunteers, mechanism=on-demand\n\n";

  Rng rng(cfg.seed);
  model::World world = make_stations(cfg.scenario, rng);
  Rng mech_rng = rng.split(0xfeed);
  auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                        world, cfg.mech_params, mech_rng);
  auto sel = select::make_selector(cfg.selector, cfg.dp_candidate_cap);
  sim::SimulatorParams sp;
  sp.max_rounds = cfg.max_rounds;
  sp.platform_budget = cfg.mech_params.platform_budget;
  sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);

  TextTable timeline({"round", "urgent %", "routine %", "new-meas", "payout $"});
  while (s.current_round() < cfg.max_rounds && !s.all_tasks_closed()) {
    const sim::RoundMetrics& rm = s.step();
    timeline.add_row(
        {std::to_string(rm.round),
         format_fixed(group_completeness(s.world(), kUrgentDeadline), 1),
         format_fixed(group_completeness(s.world(), kRoutineDeadline), 1),
         std::to_string(rm.new_measurements), format_fixed(rm.payout, 2)});
  }
  timeline.print(std::cout);

  const double urgent = group_completeness(s.world(), kUrgentDeadline);
  const double routine = group_completeness(s.world(), kRoutineDeadline);
  std::cout << "\nfinal: urgent stations " << format_fixed(urgent, 1)
            << " % complete by round " << kUrgentDeadline << ", routine "
            << format_fixed(routine, 1) << " % by round " << kRoutineDeadline
            << "; total paid $" << format_fixed(s.budget().spent(), 2)
            << " of $" << format_fixed(s.budget().total(), 2) << "\n";
  std::cout << "The deadline factor X1 front-loads rewards on the urgent "
               "cluster; routine stations catch up afterwards.\n";
  return 0;
}
