// Noise-pollution mapping — the motivating application of the paper's §III.
//
// A city wants fine-grained noise levels for 24 measurement sites spread
// over downtown (a dense cluster) and the outskirts (remote sites). Remote
// sites are exactly the tasks a fixed-reward campaign starves; this example
// runs the same campaign under all three mechanisms and reports how the
// remote sites fared under each.
//
//   ./noise_mapping [--seed=3] [--reps=10]
#include <iostream>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "geo/distance.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace mcs;

// Downtown center and the fraction of sites placed there.
constexpr geo::Point kDowntown{800.0, 800.0};
constexpr double kDowntownFraction = 0.7;
constexpr Meters kDowntownSpread = 400.0;

model::World make_city(const sim::ScenarioParams& p, Rng& rng) {
  geo::TravelModel travel;
  travel.speed_mps = p.speed_mps;
  travel.cost_per_meter = p.cost_per_meter;
  model::World world(geo::BoundingBox::square(p.area_side), travel,
                     p.neighbor_radius);
  for (int i = 0; i < p.num_tasks; ++i) {
    geo::Point loc;
    if (rng.uniform() < kDowntownFraction) {
      loc = world.area().clamp({kDowntown.x + rng.normal(0.0, kDowntownSpread),
                                kDowntown.y + rng.normal(0.0, kDowntownSpread)});
    } else {
      // Outskirts: uniform over the whole map, biased away from downtown by
      // rejection (keeps remote sites genuinely remote).
      do {
        loc = {rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)};
      } while (geo::euclidean(loc, kDowntown) < 1200.0);
    }
    world.add_task(loc, static_cast<Round>(rng.uniform_int(p.deadline_min,
                                                           p.deadline_max)),
                   p.required_measurements);
  }
  // People also concentrate downtown: 60% of users live there.
  for (int i = 0; i < p.num_users; ++i) {
    geo::Point home;
    if (rng.uniform() < 0.6) {
      home = world.area().clamp({kDowntown.x + rng.normal(0.0, 600.0),
                                 kDowntown.y + rng.normal(0.0, 600.0)});
    } else {
      home = {rng.uniform(0.0, p.area_side), rng.uniform(0.0, p.area_side)};
    }
    world.add_user(home, rng.uniform(p.user_budget_min_s, p.user_budget_max_s));
  }
  return world;
}

bool is_remote(const model::Task& t) {
  return geo::euclidean(t.location(), kDowntown) >= 1200.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  cfg.scenario.num_tasks = static_cast<int>(flags.get_int("tasks", 24));
  const int reps = static_cast<int>(flags.get_int("reps", 10));
  exp::warn_unconsumed(flags);

  std::cout << "Noise-pollution mapping: " << cfg.scenario.num_tasks
            << " sites (70% downtown, 30% remote), " << cfg.scenario.num_users
            << " residents, " << reps << " repetitions\n\n";

  TextTable table({"mechanism", "coverage %", "completeness %",
                   "remote completeness %", "downtown completeness %",
                   "$ / measurement"});
  for (const auto kind : exp::all_mechanisms()) {
    RunningStats cov, compl_all, compl_remote, compl_downtown, rpm;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(cfg.seed + static_cast<std::uint64_t>(rep) * 7919);
      model::World world = make_city(cfg.scenario, rng);
      Rng mech_rng = rng.split(0xfeed);
      auto mech = incentive::make_mechanism(kind, world, cfg.mech_params,
                                            mech_rng);
      auto sel = select::make_selector(cfg.selector, cfg.dp_candidate_cap);
      sim::SimulatorParams sp;
      sp.max_rounds = cfg.max_rounds;
      sp.platform_budget = cfg.mech_params.platform_budget;
      sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);
      const sim::CampaignMetrics m = s.run();

      cov.add(m.coverage_pct);
      compl_all.add(m.completeness_pct);
      rpm.add(m.avg_reward_per_measurement);
      long long remote_req = 0, remote_got = 0, down_req = 0, down_got = 0;
      for (const model::Task& t : s.world().tasks()) {
        const long long got = std::min(t.received(), t.required());
        if (is_remote(t)) {
          remote_req += t.required();
          remote_got += got;
        } else {
          down_req += t.required();
          down_got += got;
        }
      }
      if (remote_req > 0) {
        compl_remote.add(100.0 * static_cast<double>(remote_got) /
                         static_cast<double>(remote_req));
      }
      if (down_req > 0) {
        compl_downtown.add(100.0 * static_cast<double>(down_got) /
                           static_cast<double>(down_req));
      }
    }
    table.add_row({incentive::mechanism_name(kind), format_fixed(cov.mean(), 1),
                   format_fixed(compl_all.mean(), 1),
                   format_fixed(compl_remote.mean(), 1),
                   format_fixed(compl_downtown.mean(), 1),
                   format_fixed(rpm.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe on-demand mechanism raises rewards on the starved remote"
               " sites until commuting there pays off; fixed rewards leave"
               " them under-sampled.\n";
  return 0;
}
