// SAT vs WST (§II of the paper, made executable).
//
// Runs the same random worlds through two pipelines:
//   WST  — the paper's mode: on-demand rewards published each round, users
//          select tasks themselves (DP selector);
//   SAT  — server-assigned: per-task sealed-bid reverse auctions with
//          second-price payments, winners assigned centrally.
// and compares completeness, platform spend and user surplus. The paper
// argues WST trades a little allocational control for far less
// coordination; this example quantifies that trade on the §VI setup.
//
//   ./sat_vs_wst [--users=100] [--reps=10] [--slots=5] [--reserve=2.5]
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "sat/sat_round.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  sat::SatRoundParams sat_params;
  sat_params.slots_per_task = static_cast<int>(flags.get_int("slots", 5));
  sat_params.reserve = flags.get_double("reserve", 2.5);
  const int reps = static_cast<int>(flags.get_int("reps", 10));
  exp::warn_unconsumed(flags);

  std::cout << "SAT (reverse auction, " << sat_params.slots_per_task
            << " slots/task, reserve $" << sat_params.reserve
            << ") vs WST (on-demand + DP), " << cfg.scenario.num_users
            << " users, " << reps << " repetitions\n\n";

  RunningStats wst_compl, wst_paid, wst_surplus;
  RunningStats sat_compl, sat_paid, sat_surplus, sat_declined;

  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(rep) * 7919;

    {  // WST pipeline.
      Rng rng(seed);
      model::World world = sim::generate_world(cfg.scenario, rng);
      Rng mech_rng = rng.split(0xfeed);
      auto mech = incentive::make_mechanism(incentive::MechanismKind::kOnDemand,
                                            world, cfg.mech_params, mech_rng);
      auto sel = select::make_selector(select::SelectorKind::kDp,
                                       cfg.dp_candidate_cap);
      sim::SimulatorParams sp;
      sp.max_rounds = cfg.max_rounds;
      sp.platform_budget = cfg.mech_params.platform_budget;
      sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);
      const sim::CampaignMetrics m = s.run();
      wst_compl.add(m.completeness_pct);
      wst_paid.add(m.total_paid);
      Money surplus = 0.0;
      for (const model::User& u : s.world().users()) {
        surplus += u.total_profit();
      }
      wst_surplus.add(surplus);
    }

    {  // SAT pipeline over an identically seeded world.
      Rng rng(seed);
      model::World world = sim::generate_world(cfg.scenario, rng);
      int declined = 0;
      Money paid = 0.0;
      for (Round k = 1; k <= cfg.max_rounds; ++k) {
        const sat::SatRoundResult r = sat::run_sat_round(world, k, sat_params);
        declined += r.declined;
        paid += r.total_paid;
      }
      sat_compl.add(sim::completeness_pct(world));
      sat_paid.add(paid);
      Money surplus = 0.0;
      for (const model::User& u : world.users()) surplus += u.total_profit();
      sat_surplus.add(surplus);
      sat_declined.add(declined);
    }
  }

  TextTable table({"pipeline", "completeness %", "platform paid $",
                   "user surplus $", "declined assignments"});
  table.add_row({"WST on-demand + DP", format_fixed(wst_compl.mean(), 2),
                 format_fixed(wst_paid.mean(), 2),
                 format_fixed(wst_surplus.mean(), 2), "-"});
  table.add_row({"SAT reverse auction", format_fixed(sat_compl.mean(), 2),
                 format_fixed(sat_paid.mean(), 2),
                 format_fixed(sat_surplus.mean(), 2),
                 format_fixed(sat_declined.mean(), 1)});
  table.print(std::cout);

  std::cout << "\nThe auction squeezes user surplus toward marginal cost"
               " (second-price payments), while WST leaves users the full"
               " reward-minus-cost margin; SAT's central assignment buys"
               " coverage control at the price of the bid/assign round-trip"
               " the paper's WST design avoids.\n";
  return 0;
}
