// campaign_lab: run a full mechanism comparison from a JSON scenario file
// and emit machine-readable JSON results — the batch/automation entry point
// of the library (the other examples are human-oriented).
//
//   ./campaign_lab --scenario=scenario.json --out=results.json
//                  [--reps=10] [--selector=dp] [--seed=42]
//
// Without --scenario the paper's §VI defaults are used; without --out the
// JSON goes to stdout.
#include <fstream>
#include <iostream>

#include "common/config.h"
#include "common/json.h"
#include "exp/figures.h"
#include "sim/serialize.h"

int main(int argc, char** argv) {
  using namespace mcs;

  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  const std::string scenario_path = flags.get_string("scenario", "");
  if (!scenario_path.empty()) {
    cfg.scenario = sim::load_scenario(scenario_path);
  }
  const std::string out_path = flags.get_string("out", "");
  exp::warn_unconsumed(flags);

  Json result = Json::object();
  result["scenario"] = sim::scenario_to_json(cfg.scenario);
  Json::Object run_meta;
  run_meta["repetitions"] = Json(cfg.repetitions);
  run_meta["selector"] = Json(select::selector_name(cfg.selector));
  run_meta["seed"] = Json(static_cast<long long>(cfg.seed));
  run_meta["platform_budget"] = Json(cfg.mech_params.platform_budget);
  result["run"] = Json(std::move(run_meta));

  Json mechanisms = Json::object();
  auto kinds = exp::all_mechanisms();
  kinds.push_back(incentive::MechanismKind::kParticipation);
  for (const auto kind : kinds) {
    exp::ExperimentConfig one = cfg;
    one.mechanism = kind;
    const exp::AggregateResult agg = exp::run_experiment(one);

    Json entry = Json::object();
    auto stat = [](const RunningStats& s) {
      Json o = Json::object();
      o["mean"] = Json(s.mean());
      o["stddev"] = Json(s.stddev());
      o["min"] = Json(s.count() ? s.min() : 0.0);
      o["max"] = Json(s.count() ? s.max() : 0.0);
      return o;
    };
    entry["coverage_pct"] = stat(agg.coverage);
    entry["completeness_pct"] = stat(agg.completeness);
    entry["tasks_completed_pct"] = stat(agg.tasks_completed);
    entry["avg_measurements"] = stat(agg.avg_measurements);
    entry["measurement_variance"] = stat(agg.measurement_variance);
    entry["reward_per_measurement"] = stat(agg.reward_per_measurement);
    entry["total_paid"] = stat(agg.total_paid);
    entry["reward_gini"] = stat(agg.reward_gini);
    entry["active_user_fraction"] = stat(agg.active_fraction);

    Json per_round = Json::array();
    for (std::size_t k = 0; k < agg.round_new_measurements.size(); ++k) {
      Json row = Json::object();
      row["round"] = Json(static_cast<int>(k + 1));
      row["new_measurements"] = Json(agg.round_new_measurements[k].mean());
      row["coverage_pct"] = Json(agg.round_coverage[k].mean());
      row["completeness_pct"] = Json(agg.round_completeness[k].mean());
      row["mean_open_reward"] = Json(agg.round_mean_reward[k].mean());
      per_round.push_back(std::move(row));
    }
    entry["rounds"] = std::move(per_round);
    mechanisms[incentive::mechanism_name(kind)] = std::move(entry);
  }
  result["mechanisms"] = std::move(mechanisms);

  const std::string text = result.dump(2);
  if (out_path.empty()) {
    std::cout << text << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << text << "\n";
    std::cout << "wrote " << out_path << " (" << text.size() << " bytes)\n";
  }
  return 0;
}
