// Why does a task need phi = 20 measurements? (§III-A)
//
// Simulates a population of biased, noisy phone sensors, aggregates x
// independent readings per task with three aggregators, and prints the
// estimate RMSE as x grows — then fits the diminishing-returns quality
// model Q(x) = 1 - (1-delta)^x that the steered baseline assumes, closing
// the loop between the sensing substrate and the incentive layer.
//
//   ./sensing_quality [--users=200] [--trials=500] [--bias=1.0]
//                     [--noise-min=0.5] [--noise-max=2.0] [--seed=17]
#include <iostream>

#include "common/config.h"
#include "common/csv.h"
#include "common/strings.h"
#include "sim/sensing.h"

int main(int argc, char** argv) {
  using namespace mcs;
  using namespace mcs::sim;

  const Config flags = Config::from_args(argc, argv);
  const auto users = static_cast<std::size_t>(flags.get_int("users", 200));
  const int trials = static_cast<int>(flags.get_int("trials", 500));
  const double bias = flags.get_double("bias", 1.0);
  const double noise_min = flags.get_double("noise-min", 0.5);
  const double noise_max = flags.get_double("noise-max", 2.0);
  const int max_x = static_cast<int>(flags.get_int("max-measurements", 20));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 17)));

  std::cout << "Sensing quality: " << users << " sensors, bias~N(0," << bias
            << "), noise U[" << noise_min << "," << noise_max << "], "
            << trials << " trials per point\n\n";

  const auto population =
      draw_sensor_population(users, bias, noise_min, noise_max, rng);

  std::vector<std::vector<double>> rmse;
  const Aggregator aggs[] = {Aggregator::kMean, Aggregator::kMedian,
                             Aggregator::kTrimmedMean};
  for (const Aggregator a : aggs) {
    Rng curve_rng = rng.split(static_cast<std::uint64_t>(a) + 1);
    rmse.push_back(quality_curve(population, max_x, trials, a, curve_rng));
  }

  TextTable table({"measurements x", "rmse (mean)", "rmse (median)",
                   "rmse (trimmed)"});
  for (int x = 1; x <= max_x; ++x) {
    table.add_row({std::to_string(x),
                   format_fixed(rmse[0][static_cast<std::size_t>(x - 1)], 3),
                   format_fixed(rmse[1][static_cast<std::size_t>(x - 1)], 3),
                   format_fixed(rmse[2][static_cast<std::size_t>(x - 1)], 3)});
  }
  table.print(std::cout);

  std::cout << "\nfitted Q(x) = 1-(1-delta)^x:\n";
  for (std::size_t i = 0; i < 3; ++i) {
    const double delta = fit_quality_delta(rmse_to_quality(rmse[i]));
    std::cout << "  " << aggregator_name(aggs[i]) << ": delta = "
              << format_fixed(delta, 3) << "\n";
  }
  std::cout << "\nThe steered baseline's quality model (delta = 0.2 in the "
               "paper) corresponds to a sensor population in this regime; "
               "per-user bias puts a floor under the achievable RMSE, which "
               "is why more distinct contributors beat more readings from "
               "one phone.\n";
  return 0;
}
