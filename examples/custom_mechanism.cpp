// Extending the library: plug a custom incentive mechanism into the
// simulator.
//
// This example implements a "progress-only" mechanism — the paper's Eq. 7
// reward rule driven by the completing-progress factor alone (an ablation of
// the full three-factor demand indicator) — and compares it against the full
// on-demand mechanism on identical scenarios. It demonstrates the two
// extension points a downstream user touches: IncentiveMechanism and the
// Simulator.
//
//   ./custom_mechanism [--users=100] [--reps=10] [--seed=5]
#include <cmath>
#include <iostream>
#include <memory>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "exp/figures.h"
#include "incentive/demand.h"
#include "incentive/demand_level.h"
#include "incentive/mechanism.h"
#include "incentive/on_demand_mechanism.h"
#include "incentive/reward.h"
#include "sim/scenario.h"
#include "sim/simulator.h"

namespace {

using namespace mcs;

// A reward schedule driven only by X2 (completing progress): tasks start at
// the top demand level and cool down as measurements arrive. Deadlines and
// user density are ignored — exactly what the ablation probes.
class ProgressOnlyMechanism final : public incentive::IncentiveMechanism {
 public:
  ProgressOnlyMechanism(incentive::DemandLevelScale scale,
                        incentive::RewardRule rule)
      : scale_(scale), rule_(rule) {}

  const char* name() const override { return "progress-only"; }

  void update_rewards(const model::World& world, Round k) override {
    rewards_.assign(world.num_tasks(), 0.0);
    for (std::size_t i = 0; i < world.num_tasks(); ++i) {
      const model::Task& t = world.tasks()[i];
      if (t.completed() || t.expired_at(k)) continue;
      const double x2 = incentive::progress_factor(t.received(), t.required(),
                                                   /*lambda2=*/1.0);
      const double normalized = x2 / std::log(2.0);  // X2 in [0, ln 2]
      rewards_[i] = rule_.reward(scale_.level(normalized));
    }
  }

 private:
  incentive::DemandLevelScale scale_;
  incentive::RewardRule rule_;
};

}  // namespace

int main(int argc, char** argv) {
  const Config flags = Config::from_args(argc, argv);
  exp::ExperimentConfig cfg = exp::experiment_from_config(flags);
  const int reps = static_cast<int>(flags.get_int("reps", 10));
  exp::warn_unconsumed(flags);

  std::cout << "Ablation: full on-demand indicator vs progress-only reward "
               "schedule (" << reps << " repetitions)\n\n";

  TextTable table({"mechanism", "coverage %", "completeness %", "variance",
                   "$ / measurement"});

  for (int which = 0; which < 2; ++which) {
    RunningStats cov, compl_, var, rpm;
    const char* label = nullptr;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(cfg.seed + static_cast<std::uint64_t>(rep) * 104729);
      model::World world = sim::generate_world(cfg.scenario, rng);

      const auto rule = incentive::RewardRule::from_budget(
          cfg.mech_params.platform_budget, world.total_required(),
          cfg.mech_params.lambda, cfg.mech_params.demand_levels);
      std::unique_ptr<incentive::IncentiveMechanism> mech;
      if (which == 0) {
        mech = std::make_unique<incentive::OnDemandMechanism>(
            incentive::DemandIndicator::with_paper_defaults(),
            incentive::DemandLevelScale(cfg.mech_params.demand_levels), rule);
      } else {
        mech = std::make_unique<ProgressOnlyMechanism>(
            incentive::DemandLevelScale(cfg.mech_params.demand_levels), rule);
      }
      label = mech->name();

      auto sel = select::make_selector(cfg.selector, cfg.dp_candidate_cap);
      sim::SimulatorParams sp;
      sp.max_rounds = cfg.max_rounds;
      sp.platform_budget = cfg.mech_params.platform_budget;
      sim::Simulator s(std::move(world), std::move(mech), std::move(sel), sp);
      const sim::CampaignMetrics m = s.run();
      cov.add(m.coverage_pct);
      compl_.add(m.completeness_pct);
      var.add(m.measurement_variance);
      rpm.add(m.avg_reward_per_measurement);
    }
    table.add_row({label, format_fixed(cov.mean(), 1),
                   format_fixed(compl_.mean(), 1), format_fixed(var.mean(), 2),
                   format_fixed(rpm.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nDropping the deadline and neighbor factors costs "
               "completeness: late, remote tasks no longer heat up in time.\n";
  return 0;
}
