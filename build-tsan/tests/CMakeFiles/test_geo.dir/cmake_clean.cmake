file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/bbox_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/bbox_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/distance_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/distance_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/kdtree_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/kdtree_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/path_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/path_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/point_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/point_test.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/spatial_grid_test.cpp.o"
  "CMakeFiles/test_geo.dir/geo/spatial_grid_test.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
  "test_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
