file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/campaign_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/campaign_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/determinism_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/figures_io_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/figures_io_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fuzz_invariants_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fuzz_invariants_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/paper_properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/paper_properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/parallel_runner_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/parallel_runner_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/regression_pin_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/regression_pin_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/runner_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/runner_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
