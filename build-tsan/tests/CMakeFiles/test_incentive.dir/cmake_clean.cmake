file(REMOVE_RECURSE
  "CMakeFiles/test_incentive.dir/incentive/adaptive_budget_mechanism_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/adaptive_budget_mechanism_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/budget_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/budget_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/demand_level_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/demand_level_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/demand_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/demand_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/mechanism_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/mechanism_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/participation_mechanism_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/participation_mechanism_test.cpp.o.d"
  "CMakeFiles/test_incentive.dir/incentive/reward_test.cpp.o"
  "CMakeFiles/test_incentive.dir/incentive/reward_test.cpp.o.d"
  "test_incentive"
  "test_incentive.pdb"
  "test_incentive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
