# Empty dependencies file for test_incentive.
# This may be replaced when dependencies are built.
