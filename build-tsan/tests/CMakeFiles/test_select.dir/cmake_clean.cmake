file(REMOVE_RECURSE
  "CMakeFiles/test_select.dir/select/beam_search_selector_test.cpp.o"
  "CMakeFiles/test_select.dir/select/beam_search_selector_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/dp_selector_test.cpp.o"
  "CMakeFiles/test_select.dir/select/dp_selector_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/greedy_selector_test.cpp.o"
  "CMakeFiles/test_select.dir/select/greedy_selector_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/ils_selector_test.cpp.o"
  "CMakeFiles/test_select.dir/select/ils_selector_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/instance_test.cpp.o"
  "CMakeFiles/test_select.dir/select/instance_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/pathological_test.cpp.o"
  "CMakeFiles/test_select.dir/select/pathological_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/solver_equivalence_test.cpp.o"
  "CMakeFiles/test_select.dir/select/solver_equivalence_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/travel_graph_test.cpp.o"
  "CMakeFiles/test_select.dir/select/travel_graph_test.cpp.o.d"
  "CMakeFiles/test_select.dir/select/two_opt_test.cpp.o"
  "CMakeFiles/test_select.dir/select/two_opt_test.cpp.o.d"
  "test_select"
  "test_select.pdb"
  "test_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
