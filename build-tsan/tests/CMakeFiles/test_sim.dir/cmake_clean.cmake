file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/ascii_map_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/ascii_map_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/fairness_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/fairness_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/mechanism_interplay_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/mechanism_interplay_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/mobility_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/mobility_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/scenario_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/scenario_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/sensing_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/sensing_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/serialize_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/serialize_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/trace_analysis_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/trace_analysis_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
