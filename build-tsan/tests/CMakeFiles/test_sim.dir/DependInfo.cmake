
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/ascii_map_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/ascii_map_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/ascii_map_test.cpp.o.d"
  "/root/repo/tests/sim/event_log_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o.d"
  "/root/repo/tests/sim/fairness_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/fairness_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/fairness_test.cpp.o.d"
  "/root/repo/tests/sim/mechanism_interplay_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/mechanism_interplay_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/mechanism_interplay_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/mobility_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/mobility_test.cpp.o.d"
  "/root/repo/tests/sim/scenario_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/scenario_test.cpp.o.d"
  "/root/repo/tests/sim/sensing_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/sensing_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/sensing_test.cpp.o.d"
  "/root/repo/tests/sim/serialize_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/serialize_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/trace_analysis_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/trace_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/trace_analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ahp/CMakeFiles/mcs_ahp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/incentive/CMakeFiles/mcs_incentive.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/select/CMakeFiles/mcs_select.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sat/CMakeFiles/mcs_sat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/mcs_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exp/CMakeFiles/mcs_exp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
