file(REMOVE_RECURSE
  "CMakeFiles/test_ahp.dir/ahp/comparison_matrix_test.cpp.o"
  "CMakeFiles/test_ahp.dir/ahp/comparison_matrix_test.cpp.o.d"
  "CMakeFiles/test_ahp.dir/ahp/consistency_test.cpp.o"
  "CMakeFiles/test_ahp.dir/ahp/consistency_test.cpp.o.d"
  "CMakeFiles/test_ahp.dir/ahp/hierarchy_test.cpp.o"
  "CMakeFiles/test_ahp.dir/ahp/hierarchy_test.cpp.o.d"
  "CMakeFiles/test_ahp.dir/ahp/random_property_test.cpp.o"
  "CMakeFiles/test_ahp.dir/ahp/random_property_test.cpp.o.d"
  "CMakeFiles/test_ahp.dir/ahp/weights_test.cpp.o"
  "CMakeFiles/test_ahp.dir/ahp/weights_test.cpp.o.d"
  "test_ahp"
  "test_ahp.pdb"
  "test_ahp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ahp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
