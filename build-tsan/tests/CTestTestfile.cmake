# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_geo[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ahp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_model[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_incentive[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_select[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sat[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
