file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selector.dir/bench_ablation_selector.cpp.o"
  "CMakeFiles/bench_ablation_selector.dir/bench_ablation_selector.cpp.o.d"
  "bench_ablation_selector"
  "bench_ablation_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
