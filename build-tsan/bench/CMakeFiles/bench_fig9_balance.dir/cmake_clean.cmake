file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_balance.dir/bench_fig9_balance.cpp.o"
  "CMakeFiles/bench_fig9_balance.dir/bench_fig9_balance.cpp.o.d"
  "bench_fig9_balance"
  "bench_fig9_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
