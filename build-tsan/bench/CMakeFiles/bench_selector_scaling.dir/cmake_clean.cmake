file(REMOVE_RECURSE
  "CMakeFiles/bench_selector_scaling.dir/bench_selector_scaling.cpp.o"
  "CMakeFiles/bench_selector_scaling.dir/bench_selector_scaling.cpp.o.d"
  "bench_selector_scaling"
  "bench_selector_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selector_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
