# Empty dependencies file for bench_selector_scaling.
# This may be replaced when dependencies are built.
