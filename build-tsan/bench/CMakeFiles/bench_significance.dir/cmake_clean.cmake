file(REMOVE_RECURSE
  "CMakeFiles/bench_significance.dir/bench_significance.cpp.o"
  "CMakeFiles/bench_significance.dir/bench_significance.cpp.o.d"
  "bench_significance"
  "bench_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
