file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_factors.dir/bench_ablation_factors.cpp.o"
  "CMakeFiles/bench_ablation_factors.dir/bench_ablation_factors.cpp.o.d"
  "bench_ablation_factors"
  "bench_ablation_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
