# Empty compiler generated dependencies file for bench_ablation_factors.
# This may be replaced when dependencies are built.
