file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_index.dir/bench_spatial_index.cpp.o"
  "CMakeFiles/bench_spatial_index.dir/bench_spatial_index.cpp.o.d"
  "bench_spatial_index"
  "bench_spatial_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
