# Empty compiler generated dependencies file for bench_fig8_measurements.
# This may be replaced when dependencies are built.
