file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_measurements.dir/bench_fig8_measurements.cpp.o"
  "CMakeFiles/bench_fig8_measurements.dir/bench_fig8_measurements.cpp.o.d"
  "bench_fig8_measurements"
  "bench_fig8_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
