# Empty dependencies file for bench_ahp_tables.
# This may be replaced when dependencies are built.
