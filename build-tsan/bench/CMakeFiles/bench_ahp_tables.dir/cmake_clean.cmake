file(REMOVE_RECURSE
  "CMakeFiles/bench_ahp_tables.dir/bench_ahp_tables.cpp.o"
  "CMakeFiles/bench_ahp_tables.dir/bench_ahp_tables.cpp.o.d"
  "bench_ahp_tables"
  "bench_ahp_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ahp_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
