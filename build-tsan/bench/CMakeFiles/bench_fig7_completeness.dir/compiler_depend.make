# Empty compiler generated dependencies file for bench_fig7_completeness.
# This may be replaced when dependencies are built.
