file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_completeness.dir/bench_fig7_completeness.cpp.o"
  "CMakeFiles/bench_fig7_completeness.dir/bench_fig7_completeness.cpp.o.d"
  "bench_fig7_completeness"
  "bench_fig7_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
