# Empty dependencies file for bench_fig5_dp_vs_greedy.
# This may be replaced when dependencies are built.
