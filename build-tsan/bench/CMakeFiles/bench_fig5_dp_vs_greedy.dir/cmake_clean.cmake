file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dp_vs_greedy.dir/bench_fig5_dp_vs_greedy.cpp.o"
  "CMakeFiles/bench_fig5_dp_vs_greedy.dir/bench_fig5_dp_vs_greedy.cpp.o.d"
  "bench_fig5_dp_vs_greedy"
  "bench_fig5_dp_vs_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dp_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
