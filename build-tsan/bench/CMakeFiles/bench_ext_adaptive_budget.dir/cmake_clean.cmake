file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_budget.dir/bench_ext_adaptive_budget.cpp.o"
  "CMakeFiles/bench_ext_adaptive_budget.dir/bench_ext_adaptive_budget.cpp.o.d"
  "bench_ext_adaptive_budget"
  "bench_ext_adaptive_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
