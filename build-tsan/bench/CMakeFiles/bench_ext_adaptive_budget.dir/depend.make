# Empty dependencies file for bench_ext_adaptive_budget.
# This may be replaced when dependencies are built.
