file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mobility.dir/bench_ext_mobility.cpp.o"
  "CMakeFiles/bench_ext_mobility.dir/bench_ext_mobility.cpp.o.d"
  "bench_ext_mobility"
  "bench_ext_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
