# Empty compiler generated dependencies file for bench_incentive_micro.
# This may be replaced when dependencies are built.
