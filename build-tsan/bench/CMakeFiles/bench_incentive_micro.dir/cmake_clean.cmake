file(REMOVE_RECURSE
  "CMakeFiles/bench_incentive_micro.dir/bench_incentive_micro.cpp.o"
  "CMakeFiles/bench_incentive_micro.dir/bench_incentive_micro.cpp.o.d"
  "bench_incentive_micro"
  "bench_incentive_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incentive_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
