file(REMOVE_RECURSE
  "CMakeFiles/sensing_quality.dir/sensing_quality.cpp.o"
  "CMakeFiles/sensing_quality.dir/sensing_quality.cpp.o.d"
  "sensing_quality"
  "sensing_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensing_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
