# Empty compiler generated dependencies file for sensing_quality.
# This may be replaced when dependencies are built.
