file(REMOVE_RECURSE
  "CMakeFiles/air_quality_campaign.dir/air_quality_campaign.cpp.o"
  "CMakeFiles/air_quality_campaign.dir/air_quality_campaign.cpp.o.d"
  "air_quality_campaign"
  "air_quality_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_quality_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
