# Empty compiler generated dependencies file for air_quality_campaign.
# This may be replaced when dependencies are built.
