# Empty dependencies file for campaign_lab.
# This may be replaced when dependencies are built.
