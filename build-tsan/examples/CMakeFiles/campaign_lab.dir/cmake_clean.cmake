file(REMOVE_RECURSE
  "CMakeFiles/campaign_lab.dir/campaign_lab.cpp.o"
  "CMakeFiles/campaign_lab.dir/campaign_lab.cpp.o.d"
  "campaign_lab"
  "campaign_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
