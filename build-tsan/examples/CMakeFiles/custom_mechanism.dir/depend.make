# Empty dependencies file for custom_mechanism.
# This may be replaced when dependencies are built.
