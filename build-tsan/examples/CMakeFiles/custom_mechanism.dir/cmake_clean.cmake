file(REMOVE_RECURSE
  "CMakeFiles/custom_mechanism.dir/custom_mechanism.cpp.o"
  "CMakeFiles/custom_mechanism.dir/custom_mechanism.cpp.o.d"
  "custom_mechanism"
  "custom_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
