# Empty compiler generated dependencies file for sat_vs_wst.
# This may be replaced when dependencies are built.
