file(REMOVE_RECURSE
  "CMakeFiles/sat_vs_wst.dir/sat_vs_wst.cpp.o"
  "CMakeFiles/sat_vs_wst.dir/sat_vs_wst.cpp.o.d"
  "sat_vs_wst"
  "sat_vs_wst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_vs_wst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
