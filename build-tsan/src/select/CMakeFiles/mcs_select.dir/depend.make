# Empty dependencies file for mcs_select.
# This may be replaced when dependencies are built.
