file(REMOVE_RECURSE
  "CMakeFiles/mcs_select.dir/beam_search_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/beam_search_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/branch_bound_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/branch_bound_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/brute_force_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/brute_force_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/dp_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/dp_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/greedy_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/greedy_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/ils_selector.cpp.o"
  "CMakeFiles/mcs_select.dir/ils_selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/instance.cpp.o"
  "CMakeFiles/mcs_select.dir/instance.cpp.o.d"
  "CMakeFiles/mcs_select.dir/selector.cpp.o"
  "CMakeFiles/mcs_select.dir/selector.cpp.o.d"
  "CMakeFiles/mcs_select.dir/travel_graph.cpp.o"
  "CMakeFiles/mcs_select.dir/travel_graph.cpp.o.d"
  "CMakeFiles/mcs_select.dir/two_opt.cpp.o"
  "CMakeFiles/mcs_select.dir/two_opt.cpp.o.d"
  "libmcs_select.a"
  "libmcs_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
