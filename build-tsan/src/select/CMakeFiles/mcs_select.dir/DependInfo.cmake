
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/select/beam_search_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/beam_search_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/beam_search_selector.cpp.o.d"
  "/root/repo/src/select/branch_bound_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/branch_bound_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/branch_bound_selector.cpp.o.d"
  "/root/repo/src/select/brute_force_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/brute_force_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/brute_force_selector.cpp.o.d"
  "/root/repo/src/select/dp_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/dp_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/dp_selector.cpp.o.d"
  "/root/repo/src/select/greedy_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/greedy_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/greedy_selector.cpp.o.d"
  "/root/repo/src/select/ils_selector.cpp" "src/select/CMakeFiles/mcs_select.dir/ils_selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/ils_selector.cpp.o.d"
  "/root/repo/src/select/instance.cpp" "src/select/CMakeFiles/mcs_select.dir/instance.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/instance.cpp.o.d"
  "/root/repo/src/select/selector.cpp" "src/select/CMakeFiles/mcs_select.dir/selector.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/selector.cpp.o.d"
  "/root/repo/src/select/travel_graph.cpp" "src/select/CMakeFiles/mcs_select.dir/travel_graph.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/travel_graph.cpp.o.d"
  "/root/repo/src/select/two_opt.cpp" "src/select/CMakeFiles/mcs_select.dir/two_opt.cpp.o" "gcc" "src/select/CMakeFiles/mcs_select.dir/two_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
