file(REMOVE_RECURSE
  "libmcs_select.a"
)
