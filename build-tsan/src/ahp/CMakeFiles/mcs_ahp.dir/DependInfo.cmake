
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ahp/comparison_matrix.cpp" "src/ahp/CMakeFiles/mcs_ahp.dir/comparison_matrix.cpp.o" "gcc" "src/ahp/CMakeFiles/mcs_ahp.dir/comparison_matrix.cpp.o.d"
  "/root/repo/src/ahp/consistency.cpp" "src/ahp/CMakeFiles/mcs_ahp.dir/consistency.cpp.o" "gcc" "src/ahp/CMakeFiles/mcs_ahp.dir/consistency.cpp.o.d"
  "/root/repo/src/ahp/hierarchy.cpp" "src/ahp/CMakeFiles/mcs_ahp.dir/hierarchy.cpp.o" "gcc" "src/ahp/CMakeFiles/mcs_ahp.dir/hierarchy.cpp.o.d"
  "/root/repo/src/ahp/weights.cpp" "src/ahp/CMakeFiles/mcs_ahp.dir/weights.cpp.o" "gcc" "src/ahp/CMakeFiles/mcs_ahp.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
