# Empty dependencies file for mcs_ahp.
# This may be replaced when dependencies are built.
