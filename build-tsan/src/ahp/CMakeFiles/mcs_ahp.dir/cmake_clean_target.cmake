file(REMOVE_RECURSE
  "libmcs_ahp.a"
)
