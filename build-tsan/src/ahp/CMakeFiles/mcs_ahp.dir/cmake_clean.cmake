file(REMOVE_RECURSE
  "CMakeFiles/mcs_ahp.dir/comparison_matrix.cpp.o"
  "CMakeFiles/mcs_ahp.dir/comparison_matrix.cpp.o.d"
  "CMakeFiles/mcs_ahp.dir/consistency.cpp.o"
  "CMakeFiles/mcs_ahp.dir/consistency.cpp.o.d"
  "CMakeFiles/mcs_ahp.dir/hierarchy.cpp.o"
  "CMakeFiles/mcs_ahp.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mcs_ahp.dir/weights.cpp.o"
  "CMakeFiles/mcs_ahp.dir/weights.cpp.o.d"
  "libmcs_ahp.a"
  "libmcs_ahp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_ahp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
