# CMake generated Testfile for 
# Source directory: /root/repo/src/ahp
# Build directory: /root/repo/build-tsan/src/ahp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
