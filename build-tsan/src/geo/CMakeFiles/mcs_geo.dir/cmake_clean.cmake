file(REMOVE_RECURSE
  "CMakeFiles/mcs_geo.dir/distance.cpp.o"
  "CMakeFiles/mcs_geo.dir/distance.cpp.o.d"
  "CMakeFiles/mcs_geo.dir/kdtree.cpp.o"
  "CMakeFiles/mcs_geo.dir/kdtree.cpp.o.d"
  "CMakeFiles/mcs_geo.dir/path.cpp.o"
  "CMakeFiles/mcs_geo.dir/path.cpp.o.d"
  "CMakeFiles/mcs_geo.dir/spatial_grid.cpp.o"
  "CMakeFiles/mcs_geo.dir/spatial_grid.cpp.o.d"
  "libmcs_geo.a"
  "libmcs_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
