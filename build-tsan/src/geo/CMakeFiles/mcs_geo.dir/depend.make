# Empty dependencies file for mcs_geo.
# This may be replaced when dependencies are built.
