
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/distance.cpp" "src/geo/CMakeFiles/mcs_geo.dir/distance.cpp.o" "gcc" "src/geo/CMakeFiles/mcs_geo.dir/distance.cpp.o.d"
  "/root/repo/src/geo/kdtree.cpp" "src/geo/CMakeFiles/mcs_geo.dir/kdtree.cpp.o" "gcc" "src/geo/CMakeFiles/mcs_geo.dir/kdtree.cpp.o.d"
  "/root/repo/src/geo/path.cpp" "src/geo/CMakeFiles/mcs_geo.dir/path.cpp.o" "gcc" "src/geo/CMakeFiles/mcs_geo.dir/path.cpp.o.d"
  "/root/repo/src/geo/spatial_grid.cpp" "src/geo/CMakeFiles/mcs_geo.dir/spatial_grid.cpp.o" "gcc" "src/geo/CMakeFiles/mcs_geo.dir/spatial_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
