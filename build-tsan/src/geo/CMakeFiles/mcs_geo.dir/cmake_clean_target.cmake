file(REMOVE_RECURSE
  "libmcs_geo.a"
)
