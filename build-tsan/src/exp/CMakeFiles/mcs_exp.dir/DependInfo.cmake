
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/figures.cpp" "src/exp/CMakeFiles/mcs_exp.dir/figures.cpp.o" "gcc" "src/exp/CMakeFiles/mcs_exp.dir/figures.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/exp/CMakeFiles/mcs_exp.dir/runner.cpp.o" "gcc" "src/exp/CMakeFiles/mcs_exp.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/mcs_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/incentive/CMakeFiles/mcs_incentive.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ahp/CMakeFiles/mcs_ahp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/select/CMakeFiles/mcs_select.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
