file(REMOVE_RECURSE
  "CMakeFiles/mcs_common.dir/config.cpp.o"
  "CMakeFiles/mcs_common.dir/config.cpp.o.d"
  "CMakeFiles/mcs_common.dir/csv.cpp.o"
  "CMakeFiles/mcs_common.dir/csv.cpp.o.d"
  "CMakeFiles/mcs_common.dir/json.cpp.o"
  "CMakeFiles/mcs_common.dir/json.cpp.o.d"
  "CMakeFiles/mcs_common.dir/log.cpp.o"
  "CMakeFiles/mcs_common.dir/log.cpp.o.d"
  "CMakeFiles/mcs_common.dir/rng.cpp.o"
  "CMakeFiles/mcs_common.dir/rng.cpp.o.d"
  "CMakeFiles/mcs_common.dir/significance.cpp.o"
  "CMakeFiles/mcs_common.dir/significance.cpp.o.d"
  "CMakeFiles/mcs_common.dir/stats.cpp.o"
  "CMakeFiles/mcs_common.dir/stats.cpp.o.d"
  "CMakeFiles/mcs_common.dir/strings.cpp.o"
  "CMakeFiles/mcs_common.dir/strings.cpp.o.d"
  "CMakeFiles/mcs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mcs_common.dir/thread_pool.cpp.o.d"
  "libmcs_common.a"
  "libmcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
