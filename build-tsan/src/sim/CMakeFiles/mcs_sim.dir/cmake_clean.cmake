file(REMOVE_RECURSE
  "CMakeFiles/mcs_sim.dir/ascii_map.cpp.o"
  "CMakeFiles/mcs_sim.dir/ascii_map.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/event_log.cpp.o"
  "CMakeFiles/mcs_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/fairness.cpp.o"
  "CMakeFiles/mcs_sim.dir/fairness.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/metrics.cpp.o"
  "CMakeFiles/mcs_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/mobility.cpp.o"
  "CMakeFiles/mcs_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/scenario.cpp.o"
  "CMakeFiles/mcs_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/sensing.cpp.o"
  "CMakeFiles/mcs_sim.dir/sensing.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/serialize.cpp.o"
  "CMakeFiles/mcs_sim.dir/serialize.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/simulator.cpp.o"
  "CMakeFiles/mcs_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/trace_analysis.cpp.o"
  "CMakeFiles/mcs_sim.dir/trace_analysis.cpp.o.d"
  "libmcs_sim.a"
  "libmcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
