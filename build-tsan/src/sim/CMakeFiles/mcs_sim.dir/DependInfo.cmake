
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ascii_map.cpp" "src/sim/CMakeFiles/mcs_sim.dir/ascii_map.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/ascii_map.cpp.o.d"
  "/root/repo/src/sim/event_log.cpp" "src/sim/CMakeFiles/mcs_sim.dir/event_log.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/event_log.cpp.o.d"
  "/root/repo/src/sim/fairness.cpp" "src/sim/CMakeFiles/mcs_sim.dir/fairness.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/fairness.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/mcs_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/mcs_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/mcs_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/sensing.cpp" "src/sim/CMakeFiles/mcs_sim.dir/sensing.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/sensing.cpp.o.d"
  "/root/repo/src/sim/serialize.cpp" "src/sim/CMakeFiles/mcs_sim.dir/serialize.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/serialize.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mcs_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace_analysis.cpp" "src/sim/CMakeFiles/mcs_sim.dir/trace_analysis.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/trace_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/incentive/CMakeFiles/mcs_incentive.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/select/CMakeFiles/mcs_select.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ahp/CMakeFiles/mcs_ahp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
