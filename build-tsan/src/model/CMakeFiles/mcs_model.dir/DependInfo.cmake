
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/task.cpp" "src/model/CMakeFiles/mcs_model.dir/task.cpp.o" "gcc" "src/model/CMakeFiles/mcs_model.dir/task.cpp.o.d"
  "/root/repo/src/model/user.cpp" "src/model/CMakeFiles/mcs_model.dir/user.cpp.o" "gcc" "src/model/CMakeFiles/mcs_model.dir/user.cpp.o.d"
  "/root/repo/src/model/world.cpp" "src/model/CMakeFiles/mcs_model.dir/world.cpp.o" "gcc" "src/model/CMakeFiles/mcs_model.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
