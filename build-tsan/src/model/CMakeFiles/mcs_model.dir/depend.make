# Empty dependencies file for mcs_model.
# This may be replaced when dependencies are built.
