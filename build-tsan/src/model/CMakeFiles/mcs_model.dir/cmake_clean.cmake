file(REMOVE_RECURSE
  "CMakeFiles/mcs_model.dir/task.cpp.o"
  "CMakeFiles/mcs_model.dir/task.cpp.o.d"
  "CMakeFiles/mcs_model.dir/user.cpp.o"
  "CMakeFiles/mcs_model.dir/user.cpp.o.d"
  "CMakeFiles/mcs_model.dir/world.cpp.o"
  "CMakeFiles/mcs_model.dir/world.cpp.o.d"
  "libmcs_model.a"
  "libmcs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
