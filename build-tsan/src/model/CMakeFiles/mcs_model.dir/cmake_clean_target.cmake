file(REMOVE_RECURSE
  "libmcs_model.a"
)
