file(REMOVE_RECURSE
  "CMakeFiles/mcs_incentive.dir/adaptive_budget_mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/adaptive_budget_mechanism.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/budget.cpp.o"
  "CMakeFiles/mcs_incentive.dir/budget.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/demand.cpp.o"
  "CMakeFiles/mcs_incentive.dir/demand.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/demand_level.cpp.o"
  "CMakeFiles/mcs_incentive.dir/demand_level.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/fixed_mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/fixed_mechanism.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/mechanism.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/on_demand_mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/on_demand_mechanism.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/participation_mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/participation_mechanism.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/reward.cpp.o"
  "CMakeFiles/mcs_incentive.dir/reward.cpp.o.d"
  "CMakeFiles/mcs_incentive.dir/steered_mechanism.cpp.o"
  "CMakeFiles/mcs_incentive.dir/steered_mechanism.cpp.o.d"
  "libmcs_incentive.a"
  "libmcs_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
