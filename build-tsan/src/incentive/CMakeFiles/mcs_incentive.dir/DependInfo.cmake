
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/incentive/adaptive_budget_mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/adaptive_budget_mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/adaptive_budget_mechanism.cpp.o.d"
  "/root/repo/src/incentive/budget.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/budget.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/budget.cpp.o.d"
  "/root/repo/src/incentive/demand.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/demand.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/demand.cpp.o.d"
  "/root/repo/src/incentive/demand_level.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/demand_level.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/demand_level.cpp.o.d"
  "/root/repo/src/incentive/fixed_mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/fixed_mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/fixed_mechanism.cpp.o.d"
  "/root/repo/src/incentive/mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/mechanism.cpp.o.d"
  "/root/repo/src/incentive/on_demand_mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/on_demand_mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/on_demand_mechanism.cpp.o.d"
  "/root/repo/src/incentive/participation_mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/participation_mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/participation_mechanism.cpp.o.d"
  "/root/repo/src/incentive/reward.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/reward.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/reward.cpp.o.d"
  "/root/repo/src/incentive/steered_mechanism.cpp" "src/incentive/CMakeFiles/mcs_incentive.dir/steered_mechanism.cpp.o" "gcc" "src/incentive/CMakeFiles/mcs_incentive.dir/steered_mechanism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ahp/CMakeFiles/mcs_ahp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
