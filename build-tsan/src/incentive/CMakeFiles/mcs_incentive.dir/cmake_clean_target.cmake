file(REMOVE_RECURSE
  "libmcs_incentive.a"
)
