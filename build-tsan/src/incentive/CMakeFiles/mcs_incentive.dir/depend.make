# Empty dependencies file for mcs_incentive.
# This may be replaced when dependencies are built.
