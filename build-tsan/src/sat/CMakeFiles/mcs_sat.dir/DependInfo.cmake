
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/reverse_auction.cpp" "src/sat/CMakeFiles/mcs_sat.dir/reverse_auction.cpp.o" "gcc" "src/sat/CMakeFiles/mcs_sat.dir/reverse_auction.cpp.o.d"
  "/root/repo/src/sat/sat_round.cpp" "src/sat/CMakeFiles/mcs_sat.dir/sat_round.cpp.o" "gcc" "src/sat/CMakeFiles/mcs_sat.dir/sat_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/mcs_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/mcs_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/mcs_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
