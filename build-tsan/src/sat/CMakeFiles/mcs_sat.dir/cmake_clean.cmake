file(REMOVE_RECURSE
  "CMakeFiles/mcs_sat.dir/reverse_auction.cpp.o"
  "CMakeFiles/mcs_sat.dir/reverse_auction.cpp.o.d"
  "CMakeFiles/mcs_sat.dir/sat_round.cpp.o"
  "CMakeFiles/mcs_sat.dir/sat_round.cpp.o.d"
  "libmcs_sat.a"
  "libmcs_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
