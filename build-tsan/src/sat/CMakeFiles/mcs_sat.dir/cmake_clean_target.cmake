file(REMOVE_RECURSE
  "libmcs_sat.a"
)
