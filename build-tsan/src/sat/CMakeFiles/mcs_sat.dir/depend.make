# Empty dependencies file for mcs_sat.
# This may be replaced when dependencies are built.
